package tcp_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/transport/tcp"
	"exacoll/internal/transport/transporttest"
)

// freeAddrT reserves a loopback port for a rendezvous anchor.
func freeAddrT(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// stripedTCPWorld adapts a striped loopback mesh to the conformance
// harness's World surface.
type stripedTCPWorld struct {
	procs []*tcp.Proc
	once  sync.Once
}

func (w *stripedTCPWorld) Comm(rank int) comm.Comm { return w.procs[rank] }

func (w *stripedTCPWorld) Close() {
	w.once.Do(func() {
		for _, p := range w.procs {
			if p != nil {
				p.Close()
			}
		}
	})
}

// TestTableIConformanceStriped runs the Table I matrix over the striped
// TCP transport (4 connections per peer pair, 1 KiB striping threshold
// so even modest payloads cross the segment-reassembly path), comparing
// bit for bit against the mem reference. Striping must be invisible to
// every collective: segments reorder across connections, reassembly and
// in-order delivery restore exact MPI matching semantics.
func TestTableIConformanceStriped(t *testing.T) {
	if testing.Short() {
		t.Skip("striped conformance is the long-haul suite; covered by the shm/mem matrix in -short")
	}
	transporttest.RunTableI(t, stripedFactory)
}

// stripedFactory builds a 4-stripe loopback mesh with a 1 KiB striping
// threshold — the configuration both conformance matrices run against.
func stripedFactory(t *testing.T, p int) transporttest.World {
	addr := freeAddrT(t)
	opts := tcp.Options{Timeout: 20 * time.Second, Stripes: 4, StripeThreshold: 1 << 10}
	procs := make([]*tcp.Proc, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			procs[r], errs[r] = tcp.Rendezvous(r, p, addr, opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d rendezvous: %v", r, err)
		}
	}
	return &stripedTCPWorld{procs: procs}
}

// TestVCollConformanceStriped runs the skewed-size vector-collective
// matrix over the same striped mesh: the 1032-byte unit blocks straddle
// the striping threshold, so ragged per-rank payloads mix striped and
// unstriped messages within a single collective.
func TestVCollConformanceStriped(t *testing.T) {
	if testing.Short() {
		t.Skip("striped conformance is the long-haul suite; covered by the shm/mem matrix in -short")
	}
	transporttest.RunVColl(t, stripedFactory)
}
