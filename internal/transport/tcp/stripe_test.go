package tcp

import (
	"bytes"
	"errors"

	"sync"
	"testing"
	"time"

	"exacoll/internal/comm"
)

// stripedWorld forms a p-rank world with S stripes per peer pair and a
// small striping threshold so modest payloads exercise the striped path.
func stripedWorld(t *testing.T, p, stripes int) []*Proc {
	t.Helper()
	addr := freeAddr(t)
	opts := Options{Timeout: 10 * time.Second, Stripes: stripes, StripeThreshold: 1 << 10}
	procs := make([]*Proc, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			procs[r], errs[r] = Rendezvous(r, p, addr, opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d rendezvous: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, pr := range procs {
			if pr != nil {
				pr.Close()
			}
		}
	})
	return procs
}

// TestStripedBasic: small (single-segment), large (split), and
// zero-length messages all arrive intact and in FIFO order per
// (source, tag) across a striped pair.
func TestStripedBasic(t *testing.T) {
	procs := stripedWorld(t, 2, 4)

	large := make([]byte, 300<<10) // well past the 1 KiB test threshold
	for i := range large {
		large[i] = byte(i * 7)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// FIFO: small, large, zero, small again — one tag.
		if err := procs[1].Send(0, 5, []byte("hello")); err != nil {
			t.Errorf("send small: %v", err)
		}
		if err := procs[1].Send(0, 5, large); err != nil {
			t.Errorf("send large: %v", err)
		}
		if err := procs[1].Send(0, 5, nil); err != nil {
			t.Errorf("send zero: %v", err)
		}
		if err := procs[1].Send(0, 5, []byte("bye")); err != nil {
			t.Errorf("send tail: %v", err)
		}
	}()
	buf := make([]byte, len(large))
	n, err := procs[0].Recv(1, 5, buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("first recv: n=%d err=%v", n, err)
	}
	n, err = procs[0].Recv(1, 5, buf)
	if err != nil || n != len(large) || !bytes.Equal(buf[:n], large) {
		t.Fatalf("large recv: n=%d err=%v equal=%v", n, err, bytes.Equal(buf[:n], large))
	}
	n, err = procs[0].Recv(1, 5, buf)
	if err != nil || n != 0 {
		t.Fatalf("zero recv: n=%d err=%v", n, err)
	}
	n, err = procs[0].Recv(1, 5, buf)
	if err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("tail recv: n=%d err=%v", n, err)
	}
	wg.Wait()
}

// TestStripedLocalityPorts: a striped world reports its stripe count as
// Locality.Ports, so tuning selects k ≈ #ports; a SetLocality override
// still wins.
func TestStripedLocalityPorts(t *testing.T) {
	procs := stripedWorld(t, 2, 3)
	loc, ok := procs[0].Locality(1)
	if !ok || loc.Ports != 3 {
		t.Fatalf("Locality(1) = %+v, %v; want Ports=3", loc, ok)
	}
	procs[0].SetLocality(1, 7)
	if loc, _ := procs[0].Locality(1); loc.Ports != 7 {
		t.Fatalf("override Locality(1).Ports = %d, want 7", loc.Ports)
	}
}

// TestStripedManyMessages: a storm of interleaved small and large
// messages on multiple tags survives reordering across stripes.
func TestStripedManyMessages(t *testing.T) {
	procs := stripedWorld(t, 3, 2)
	const rounds = 40
	payload := func(src, i int) []byte {
		n := 64
		if i%5 == 0 {
			n = 8 << 10 // striped
		}
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(src*31 + i*7 + j)
		}
		return b
	}
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			pr := procs[r]
			var inner sync.WaitGroup
			for peer := 0; peer < 3; peer++ {
				if peer == r {
					continue
				}
				inner.Add(2)
				go func(peer int) {
					defer inner.Done()
					for i := 0; i < rounds; i++ {
						if err := pr.Send(peer, comm.Tag(r), payload(r, i)); err != nil {
							t.Errorf("rank %d send to %d: %v", r, peer, err)
							return
						}
					}
				}(peer)
				go func(peer int) {
					defer inner.Done()
					buf := make([]byte, 8<<10)
					for i := 0; i < rounds; i++ {
						n, err := pr.Recv(peer, comm.Tag(peer), buf)
						if err != nil {
							t.Errorf("rank %d recv from %d: %v", r, peer, err)
							return
						}
						want := payload(peer, i)
						if !bytes.Equal(buf[:n], want) {
							t.Errorf("rank %d msg %d from %d: corrupt (n=%d want %d)", r, i, peer, n, len(want))
							return
						}
					}
				}(peer)
			}
			inner.Wait()
		}(r)
	}
	wg.Wait()
}

// TestStripedPeerDeath: closing one rank's process surfaces
// ErrPeerDead on the survivor across all stripes.
func TestStripedPeerDeath(t *testing.T) {
	procs := stripedWorld(t, 2, 4)
	procs[1].Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if failed := procs[0].Failed(); len(failed) == 1 && failed[0] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead striped peer never detected; Failed() = %v", procs[0].Failed())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := procs[0].Recv(1, 3, make([]byte, 4)); !errors.Is(err, comm.ErrPeerDead) {
		t.Fatalf("recv from dead striped peer: want ErrPeerDead, got %v", err)
	}
	if err := procs[0].Send(1, 3, []byte{1}); !errors.Is(err, comm.ErrPeerDead) {
		t.Fatalf("send to dead striped peer: want ErrPeerDead, got %v", err)
	}
}

// TestStripedSegmentation exercises every size straddling the threshold
// and the stripe-count boundaries.
func TestStripedSegmentation(t *testing.T) {
	procs := stripedWorld(t, 2, 4)
	th := procs[0].stripeThres
	sizes := []int{th - 1, th, th + 1, th + 2, 4 * th, 4*th + 3, 64 * th}
	buf := make([]byte, 64*th+8)
	for _, n := range sizes {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(i ^ (i >> 8))
		}
		errc := make(chan error, 1)
		go func() { errc <- procs[1].Send(0, 9, msg) }()
		got, err := procs[0].Recv(1, 9, buf)
		if err != nil {
			t.Fatalf("size %d: recv: %v", n, err)
		}
		if serr := <-errc; serr != nil {
			t.Fatalf("size %d: send: %v", n, serr)
		}
		if got != n || !bytes.Equal(buf[:got], msg) {
			t.Fatalf("size %d: corrupt (got %d)", n, got)
		}
	}
}
