package faulty

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoListener accepts connections and echoes bytes back until EOF.
func echoListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestNetDialRefusal(t *testing.T) {
	ln := echoListener(t)
	n := NewNet(NetOptions{Seed: 1, DialRefuseProb: 1})
	_, err := n.Dialer()(ln.Addr().String(), time.Second)
	if !errors.Is(err, ErrDialRefused) || !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrDialRefused wrapping ErrInjected, got %v", err)
	}
	dials, refused, _ := n.Stats()
	if dials != 1 || refused != 1 {
		t.Fatalf("stats dials=%d refused=%d", dials, refused)
	}
}

func TestNetHandshakeDrop(t *testing.T) {
	ln := echoListener(t)
	n := NewNet(NetOptions{Seed: 1, HandshakeDropProb: 1})
	_, err := n.Dialer()(ln.Addr().String(), time.Second)
	if !errors.Is(err, ErrConnReset) {
		t.Fatalf("want ErrConnReset, got %v", err)
	}
}

func TestNetMidStreamReset(t *testing.T) {
	ln := echoListener(t)
	n := NewNet(NetOptions{Seed: 7, ResetProb: 1, ResetMinBytes: 8, ResetMaxBytes: 8})
	conn, err := n.Dialer()(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Budget is 8 bytes shared across directions; the write that crosses
	// it must surface a reset.
	var resetErr error
	for i := 0; i < 4; i++ {
		if _, err := conn.Write(make([]byte, 4)); err != nil {
			resetErr = err
			break
		}
	}
	if !errors.Is(resetErr, ErrConnReset) {
		t.Fatalf("want mid-stream ErrConnReset, got %v", resetErr)
	}
	if _, _, resets := n.Stats(); resets != 1 {
		t.Fatalf("resets = %d, want 1", resets)
	}
}

func TestNetDeterministicFromSeed(t *testing.T) {
	draw := func(seed int64) []bool {
		n := NewNet(NetOptions{Seed: seed, DialRefuseProb: 0.5})
		out := make([]bool, 32)
		for i := range out {
			out[i] = n.draw() < 0.5
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestNetPartitionBlackholesWrites(t *testing.T) {
	ln := echoListener(t)
	n := NewNet(NetOptions{Seed: 3})
	conn, err := n.Dialer()(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Healthy first: a write round-trips through the echo server.
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo failed: %q %v", buf, err)
	}

	n.Partition(true)
	// Writes report success but deliver nothing; a read only sees silence.
	if nb, err := conn.Write([]byte("lost")); err != nil || nb != 4 {
		t.Fatalf("partitioned write: nb=%d err=%v", nb, err)
	}
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read got data through an outbound partition")
	}
	// New dials refuse while partitioned.
	if _, err := n.Dialer()(ln.Addr().String(), time.Second); !errors.Is(err, ErrDialRefused) {
		t.Fatalf("partitioned dial: %v", err)
	}

	n.Partition(false)
	conn.SetReadDeadline(time.Time{})
	if _, err := conn.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "back" {
		t.Fatalf("post-heal echo failed: %q %v", buf, err)
	}
}

func TestNetThrottle(t *testing.T) {
	ln := echoListener(t)
	n := NewNet(NetOptions{Seed: 1, ThrottleBytesPerSec: 64 * 1024})
	conn, err := n.Dialer()(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := conn.Write(make([]byte, 16*1024)); err != nil {
		t.Fatal(err)
	}
	// 16 KiB at 64 KiB/s ≈ 250ms; allow generous slack below that floor.
	if el := time.Since(start); el < 100*time.Millisecond {
		t.Fatalf("throttled write finished in %v, want >= 100ms", el)
	}
}
