package faulty

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Connection-level fault injection — the wire chaos under the op-level
// budgets in this package. A Net wraps real dials (tcp.Options.Dialer
// accepts its Dialer directly) and injects the failure modes a production
// link actually exhibits:
//
//   - dial refusal: the connection never establishes (listener down,
//     SYN dropped) — ErrDialRefused at dial time.
//   - handshake drop: the connection establishes and dies before a byte
//     moves — the peer sees an immediate EOF mid-hello.
//   - mid-stream reset: the connection carries a random (seeded) number
//     of bytes, then resets — both ends see a hard failure at an
//     arbitrary protocol point.
//   - asymmetric partition: outbound writes black-hole (succeed locally,
//     deliver nothing) and new dials refuse, while inbound traffic still
//     flows — the classic one-way link failure that only liveness
//     monitoring can detect.
//   - slow link: reads and writes are throttled to a byte rate, widening
//     every race window without changing any outcome.
//
// All randomness derives from NetOptions.Seed, so a failing chaos run
// replays from its seed. Injected errors wrap ErrInjected.

// Errors injected by a Net, all wrapping ErrInjected.
var (
	ErrDialRefused = fmt.Errorf("%w: dial refused", ErrInjected)
	ErrConnReset   = fmt.Errorf("%w: connection reset", ErrInjected)
)

// NetOptions configures a Net. Zero values inject nothing.
type NetOptions struct {
	// Seed fixes the random stream behind every probabilistic decision.
	Seed int64
	// DialRefuseProb refuses each outbound dial with this probability.
	DialRefuseProb float64
	// HandshakeDropProb closes each new connection before any byte moves.
	HandshakeDropProb float64
	// ResetProb gives each connection, with this probability, a byte
	// budget drawn uniformly from [ResetMinBytes, ResetMaxBytes]; the
	// first read or write past the budget closes the connection and
	// surfaces ErrConnReset.
	ResetProb float64
	// ResetMinBytes and ResetMaxBytes bound the reset budget (defaults
	// 1 and 4096).
	ResetMinBytes, ResetMaxBytes int
	// ThrottleBytesPerSec caps the link rate (0: unthrottled).
	ThrottleBytesPerSec int
}

// Net is a seeded connection-fault injector. Plug its Dialer into
// tcp.Options.Dialer; every connection it creates carries the configured
// faults. Safe for concurrent use.
type Net struct {
	opts NetOptions

	mu  sync.Mutex
	rng *rand.Rand

	partitioned atomic.Bool
	dials       atomic.Int64
	resets      atomic.Int64
	refusals    atomic.Int64

	connMu sync.Mutex
	conns  map[*chaosConn]struct{}
}

// NewNet builds a connection-fault injector from seeded options.
func NewNet(o NetOptions) *Net {
	if o.ResetMinBytes <= 0 {
		o.ResetMinBytes = 1
	}
	if o.ResetMaxBytes < o.ResetMinBytes {
		o.ResetMaxBytes = o.ResetMinBytes + 4096
	}
	return &Net{
		opts:  o,
		rng:   rand.New(rand.NewSource(o.Seed)),
		conns: map[*chaosConn]struct{}{},
	}
}

func (n *Net) draw() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64()
}

func (n *Net) drawBudget() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	span := n.opts.ResetMaxBytes - n.opts.ResetMinBytes
	return int64(n.opts.ResetMinBytes + n.rng.Intn(span+1))
}

// Partition toggles the asymmetric partition: while on, new dials refuse
// and writes on existing connections black-hole (deliver nothing while
// reporting success), but inbound traffic keeps flowing — the peer's only
// evidence is silence. The liveness monitor's case.
func (n *Net) Partition(on bool) { n.partitioned.Store(on) }

// Stats reports (dials attempted, dials refused, connections reset).
func (n *Net) Stats() (dials, refused, resets int64) {
	return n.dials.Load(), n.refusals.Load(), n.resets.Load()
}

// Dialer returns a dial function carrying the configured faults —
// the value for tcp.Options.Dialer.
func (n *Net) Dialer() func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		n.dials.Add(1)
		if n.partitioned.Load() {
			n.refusals.Add(1)
			return nil, fmt.Errorf("%w (partitioned, %s)", ErrDialRefused, addr)
		}
		if p := n.opts.DialRefuseProb; p > 0 && n.draw() < p {
			n.refusals.Add(1)
			return nil, fmt.Errorf("%w (%s)", ErrDialRefused, addr)
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		if p := n.opts.HandshakeDropProb; p > 0 && n.draw() < p {
			conn.Close()
			n.resets.Add(1)
			return nil, fmt.Errorf("%w (handshake drop, %s)", ErrConnReset, addr)
		}
		return n.wrap(conn), nil
	}
}

// wrap returns conn carrying this net's mid-stream faults.
func (n *Net) wrap(conn net.Conn) net.Conn {
	c := &chaosConn{Conn: conn, net: n, budget: -1}
	if p := n.opts.ResetProb; p > 0 && n.draw() < p {
		c.budget = n.drawBudget()
	}
	n.connMu.Lock()
	n.conns[c] = struct{}{}
	n.connMu.Unlock()
	return c
}

func (n *Net) drop(c *chaosConn) {
	n.connMu.Lock()
	delete(n.conns, c)
	n.connMu.Unlock()
}

// chaosConn is one connection under a Net's fault regime. The byte budget
// is shared between directions so the reset lands at one deterministic
// stream offset per seeded draw.
type chaosConn struct {
	net.Conn
	net    *Net
	mu     sync.Mutex
	budget int64 // bytes until injected reset; -1 = never
	done   bool
}

// spend consumes budget for nb transferred bytes; it reports whether the
// connection should now reset.
func (c *chaosConn) spend(nb int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget < 0 || c.done {
		return false
	}
	c.budget -= int64(nb)
	if c.budget < 0 {
		c.done = true
		return true
	}
	return false
}

func (c *chaosConn) throttle(nb int) {
	if rate := c.net.opts.ThrottleBytesPerSec; rate > 0 && nb > 0 {
		time.Sleep(time.Duration(float64(nb) / float64(rate) * float64(time.Second)))
	}
}

func (c *chaosConn) Read(b []byte) (int, error) {
	nb, err := c.Conn.Read(b)
	c.throttle(nb)
	if err == nil && c.spend(nb) {
		c.net.resets.Add(1)
		c.Conn.Close()
		return nb, fmt.Errorf("%w (read)", ErrConnReset)
	}
	return nb, err
}

func (c *chaosConn) Write(b []byte) (int, error) {
	if c.net.partitioned.Load() {
		// Black-hole: report success, deliver nothing. The peer's
		// monitor sees only silence.
		return len(b), nil
	}
	c.throttle(len(b))
	if c.spend(len(b)) {
		c.net.resets.Add(1)
		c.Conn.Close()
		return 0, fmt.Errorf("%w (write)", ErrConnReset)
	}
	return c.Conn.Write(b)
}

func (c *chaosConn) Close() error {
	c.net.drop(c)
	return c.Conn.Close()
}
