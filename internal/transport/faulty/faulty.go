// Package faulty wraps a comm.Comm with deterministic fault injection for
// testing error propagation: after a configured number of operations, the
// wrapped communicator starts failing every call. Collective algorithms
// must surface the error (never hang, never return corrupted success) —
// the property the error-path tests in internal/core assert across every
// algorithm in the registry.
//
// Faults are deterministic budgets rather than random drops: a Budget
// allows n successful operations world-wide and fails every one after it,
// so a shrinking budget sweeps the failure point across every send (or
// receive) of a collective. Send faults surface at post time (Send/Isend
// return ErrInjected); receive faults surface at completion (Recv returns
// ErrInjected, and a wrapped Irecv request delivers it through Wait/Test)
// — the two places a real transport reports link failures. An optional
// Delay stretches every operation to widen race windows in overlap tests.
package faulty

import (
	"errors"
	"sync/atomic"
	"time"

	"exacoll/internal/comm"
)

// ErrInjected is the failure surfaced once the budget is exhausted.
var ErrInjected = errors.New("faulty: injected failure")

// Budget is the shared countdown across all ranks of one world: each
// counted operation decrements it, and operations after it hits zero fail.
type Budget struct {
	remaining atomic.Int64
}

// NewBudget allows n successful operations world-wide.
func NewBudget(n int) *Budget {
	b := &Budget{}
	b.remaining.Store(int64(n))
	return b
}

// spend returns ErrInjected when the budget is exhausted.
func (b *Budget) spend() error {
	if b.remaining.Add(-1) < 0 {
		return ErrInjected
	}
	return nil
}

// Options configures the injected faults. Zero values inject nothing.
type Options struct {
	// Send makes sends fail at post time once exhausted.
	Send *Budget
	// Recv makes receives fail at completion once exhausted: blocking
	// Recv returns ErrInjected, and Irecv requests surface it through
	// Wait/Test after the underlying receive completes.
	Recv *Budget
	// Delay is added to every operation before it is forwarded,
	// simulating a slow link (wall-clock substrates only).
	Delay time.Duration
}

// New returns a communicator injecting the configured faults around c.
func New(c comm.Comm, o Options) comm.Comm {
	return &faultyComm{inner: c, opts: o}
}

// Wrap returns a communicator whose sends fail once the budget runs out.
// Receives are not failed directly (a real NIC fault manifests at the
// sender or as a missing message); the mem transport's failure handling
// releases any receives left orphaned by failed sends.
func Wrap(c comm.Comm, b *Budget) comm.Comm {
	return New(c, Options{Send: b})
}

type faultyComm struct {
	inner comm.Comm
	opts  Options
}

func (f *faultyComm) Rank() int           { return f.inner.Rank() }
func (f *faultyComm) Size() int           { return f.inner.Size() }
func (f *faultyComm) ChargeCompute(n int) { f.inner.ChargeCompute(n) }

func (f *faultyComm) delay() {
	if f.opts.Delay > 0 {
		time.Sleep(f.opts.Delay)
	}
}

func (f *faultyComm) Send(to int, tag comm.Tag, buf []byte) error {
	f.delay()
	if f.opts.Send != nil {
		if err := f.opts.Send.spend(); err != nil {
			return err
		}
	}
	return f.inner.Send(to, tag, buf)
}

func (f *faultyComm) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	f.delay()
	if f.opts.Send != nil {
		if err := f.opts.Send.spend(); err != nil {
			return nil, err
		}
	}
	return f.inner.Isend(to, tag, buf)
}

func (f *faultyComm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	f.delay()
	n, err := f.inner.Recv(from, tag, buf)
	if err == nil && f.opts.Recv != nil {
		err = f.opts.Recv.spend()
	}
	return n, err
}

func (f *faultyComm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	f.delay()
	req, err := f.inner.Irecv(from, tag, buf)
	if err != nil {
		return nil, err
	}
	if f.opts.Recv == nil {
		return req, nil
	}
	return &faultyRecvReq{inner: req, budget: f.opts.Recv}, nil
}

// faultyRecvReq spends the receive budget when the underlying receive
// completes; an exhausted budget surfaces as ErrInjected from Wait and
// Test. The resolution is memoized so repeated Wait/Test calls observe
// the same terminal status (the comm.Request idempotency contract).
type faultyRecvReq struct {
	inner    comm.Request
	budget   *Budget
	resolved bool
	err      error
}

func (r *faultyRecvReq) resolve(err error) error {
	if !r.resolved {
		if err == nil {
			err = r.budget.spend()
		}
		r.resolved, r.err = true, err
	}
	return r.err
}

func (r *faultyRecvReq) Wait() error {
	if r.resolved {
		return r.err
	}
	return r.resolve(r.inner.Wait())
}

// Test polls the underlying request when it supports polling; transports
// without comm.Tester report not-done, leaving completion to Wait.
func (r *faultyRecvReq) Test() (bool, error) {
	if r.resolved {
		return true, r.err
	}
	done, err, ok := comm.TryTest(r.inner)
	if !ok || !done {
		return false, nil
	}
	return true, r.resolve(err)
}

func (r *faultyRecvReq) Len() int { return r.inner.Len() }
