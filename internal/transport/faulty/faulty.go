// Package faulty wraps a comm.Comm with deterministic fault injection for
// testing error propagation: after a configured number of operations, the
// wrapped communicator starts failing every call. Collective algorithms
// must surface the error (never hang, never return corrupted success) —
// the property the error-path tests in internal/core assert across every
// algorithm in the registry.
package faulty

import (
	"errors"
	"sync/atomic"

	"exacoll/internal/comm"
)

// ErrInjected is the failure surfaced once the budget is exhausted.
var ErrInjected = errors.New("faulty: injected failure")

// Budget is the shared countdown across all ranks of one world: each
// counted operation decrements it, and operations after it hits zero fail.
type Budget struct {
	remaining atomic.Int64
}

// NewBudget allows n successful operations world-wide.
func NewBudget(n int) *Budget {
	b := &Budget{}
	b.remaining.Store(int64(n))
	return b
}

// spend returns ErrInjected when the budget is exhausted.
func (b *Budget) spend() error {
	if b.remaining.Add(-1) < 0 {
		return ErrInjected
	}
	return nil
}

// Wrap returns a communicator whose sends fail once the budget runs out.
// Receives are not failed directly (a real NIC fault manifests at the
// sender or as a missing message); the mem transport's failure handling
// releases any receives left orphaned by failed sends.
func Wrap(c comm.Comm, b *Budget) comm.Comm {
	return &faultyComm{inner: c, budget: b}
}

type faultyComm struct {
	inner  comm.Comm
	budget *Budget
}

func (f *faultyComm) Rank() int           { return f.inner.Rank() }
func (f *faultyComm) Size() int           { return f.inner.Size() }
func (f *faultyComm) ChargeCompute(n int) { f.inner.ChargeCompute(n) }

func (f *faultyComm) Send(to int, tag comm.Tag, buf []byte) error {
	if err := f.budget.spend(); err != nil {
		return err
	}
	return f.inner.Send(to, tag, buf)
}

func (f *faultyComm) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	if err := f.budget.spend(); err != nil {
		return nil, err
	}
	return f.inner.Isend(to, tag, buf)
}

func (f *faultyComm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	return f.inner.Recv(from, tag, buf)
}

func (f *faultyComm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return f.inner.Irecv(from, tag, buf)
}
