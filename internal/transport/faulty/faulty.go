// Package faulty wraps a comm.Comm with deterministic fault injection for
// testing error propagation: after a configured number of operations, the
// wrapped communicator starts failing every call. Collective algorithms
// must surface the error (never hang, never return corrupted success) —
// the property the error-path tests in internal/core assert across every
// algorithm in the registry.
//
// Faults are deterministic budgets rather than random drops: a Budget
// allows n successful operations world-wide and fails every one after it,
// so a shrinking budget sweeps the failure point across every send (or
// receive) of a collective. Send faults surface at post time (Send/Isend
// return ErrInjected); receive faults surface at completion (Recv returns
// ErrInjected, and a wrapped Irecv request delivers it through Wait/Test)
// — the two places a real transport reports link failures. An optional
// Delay stretches every operation to widen race windows in overlap tests.
//
// Alongside the deterministic budgets, seeded probabilistic faults
// (SendProb/RecvProb) fail each operation independently with a fixed
// probability, and Jitter adds a random extra delay per operation — the
// chaos-style load for soak tests. The random stream is derived from
// Options.Seed and the wrapped communicator's rank, so a failing run
// replays exactly from its seed. Every injected error wraps ErrInjected,
// so errors.Is(err, ErrInjected) holds through comm.WaitAll and the
// nonblocking engine's WaitAllColl.
package faulty

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"exacoll/internal/comm"
)

// ErrInjected is the failure surfaced once the budget is exhausted.
var ErrInjected = errors.New("faulty: injected failure")

// Budget is the shared countdown across all ranks of one world: each
// counted operation decrements it, and operations after it hits zero fail.
type Budget struct {
	remaining atomic.Int64
}

// NewBudget allows n successful operations world-wide.
func NewBudget(n int) *Budget {
	b := &Budget{}
	b.remaining.Store(int64(n))
	return b
}

// spend returns an error wrapping ErrInjected when the budget is
// exhausted.
func (b *Budget) spend() error {
	if b.remaining.Add(-1) < 0 {
		return fmt.Errorf("%w: operation budget exhausted", ErrInjected)
	}
	return nil
}

// Options configures the injected faults. Zero values inject nothing.
type Options struct {
	// Send makes sends fail at post time once exhausted.
	Send *Budget
	// Recv makes receives fail at completion once exhausted: blocking
	// Recv returns ErrInjected, and Irecv requests surface it through
	// Wait/Test after the underlying receive completes.
	Recv *Budget
	// Delay is added to every operation before it is forwarded,
	// simulating a slow link (wall-clock substrates only).
	Delay time.Duration

	// Seed fixes the per-rank random stream behind SendProb, RecvProb,
	// and Jitter, so chaos runs replay deterministically. Two wrapped
	// communicators with the same seed and rank draw identical streams.
	Seed int64
	// SendProb fails each send independently with this probability at
	// post time (0 disables, 1 fails everything).
	SendProb float64
	// RecvProb fails each receive independently with this probability at
	// completion, like the Recv budget.
	RecvProb float64
	// Jitter adds a uniformly random extra delay in [0, Jitter) to every
	// operation, on top of the fixed Delay.
	Jitter time.Duration
}

func (o Options) needRNG() bool {
	return o.SendProb > 0 || o.RecvProb > 0 || o.Jitter > 0
}

// New returns a communicator injecting the configured faults around c.
func New(c comm.Comm, o Options) comm.Comm {
	f := &faultyComm{inner: c, opts: o}
	if o.needRNG() {
		// Mix the rank into the seed (splitmix-style odd constant) so
		// ranks draw distinct but individually reproducible streams.
		mixed := uint64(o.Seed) ^ (uint64(c.Rank()+1) * 0x9e3779b97f4a7c15)
		f.rng = rand.New(rand.NewSource(int64(mixed)))
	}
	return f
}

// Wrap returns a communicator whose sends fail once the budget runs out.
// Receives are not failed directly (a real NIC fault manifests at the
// sender or as a missing message); the mem transport's failure handling
// releases any receives left orphaned by failed sends.
func Wrap(c comm.Comm, b *Budget) comm.Comm {
	return New(c, Options{Send: b})
}

type faultyComm struct {
	inner comm.Comm
	opts  Options

	rngMu sync.Mutex // rand.Rand is not goroutine-safe; ops may be concurrent
	rng   *rand.Rand
}

// Unwrap reveals the wrapped communicator (the errors.Unwrap convention),
// letting capability probes like the flight recorder's walk the chain.
func (f *faultyComm) Unwrap() comm.Comm { return f.inner }

func (f *faultyComm) Rank() int           { return f.inner.Rank() }
func (f *faultyComm) Size() int           { return f.inner.Size() }
func (f *faultyComm) ChargeCompute(n int) { f.inner.ChargeCompute(n) }

// draw samples one uniform variate from the per-rank stream.
func (f *faultyComm) draw() float64 {
	f.rngMu.Lock()
	defer f.rngMu.Unlock()
	return f.rng.Float64()
}

func (f *faultyComm) delay() {
	d := f.opts.Delay
	if f.opts.Jitter > 0 {
		d += time.Duration(f.draw() * float64(f.opts.Jitter))
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// sendFault decides whether this send fails at post time: first the
// deterministic budget, then the probabilistic drop.
func (f *faultyComm) sendFault(to int, tag comm.Tag) error {
	if f.opts.Send != nil {
		if err := f.opts.Send.spend(); err != nil {
			return fmt.Errorf("%w (send to rank %d tag %d)", err, to, tag)
		}
	}
	if f.opts.SendProb > 0 && f.draw() < f.opts.SendProb {
		return fmt.Errorf("%w: probabilistic send fault to rank %d tag %d", ErrInjected, to, tag)
	}
	return nil
}

// recvFault decides whether a completed receive is failed retroactively.
func (f *faultyComm) recvFault(from int, tag comm.Tag) error {
	if f.opts.Recv != nil {
		if err := f.opts.Recv.spend(); err != nil {
			return fmt.Errorf("%w (recv from rank %d tag %d)", err, from, tag)
		}
	}
	if f.opts.RecvProb > 0 && f.draw() < f.opts.RecvProb {
		return fmt.Errorf("%w: probabilistic recv fault from rank %d tag %d", ErrInjected, from, tag)
	}
	return nil
}

// faultsRecvs reports whether receive-side injection is configured at all.
func (f *faultyComm) faultsRecvs() bool {
	return f.opts.Recv != nil || f.opts.RecvProb > 0
}

func (f *faultyComm) Send(to int, tag comm.Tag, buf []byte) error {
	f.delay()
	if err := f.sendFault(to, tag); err != nil {
		return err
	}
	return f.inner.Send(to, tag, buf)
}

func (f *faultyComm) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	f.delay()
	if err := f.sendFault(to, tag); err != nil {
		return nil, err
	}
	return f.inner.Isend(to, tag, buf)
}

func (f *faultyComm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	f.delay()
	n, err := f.inner.Recv(from, tag, buf)
	if err == nil {
		err = f.recvFault(from, tag)
	}
	return n, err
}

func (f *faultyComm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	f.delay()
	req, err := f.inner.Irecv(from, tag, buf)
	if err != nil {
		return nil, err
	}
	if !f.faultsRecvs() {
		return req, nil
	}
	return &faultyRecvReq{inner: req, owner: f, from: from, tag: tag}, nil
}

// faultyRecvReq applies receive-side injection when the underlying receive
// completes; the injected error (wrapping ErrInjected) surfaces from Wait
// and Test. The resolution is memoized so repeated Wait/Test calls observe
// the same terminal status (the comm.Request idempotency contract).
type faultyRecvReq struct {
	inner    comm.Request
	owner    *faultyComm
	from     int
	tag      comm.Tag
	resolved bool
	err      error
}

func (r *faultyRecvReq) resolve(err error) error {
	if !r.resolved {
		if err == nil {
			err = r.owner.recvFault(r.from, r.tag)
		}
		r.resolved, r.err = true, err
	}
	return r.err
}

func (r *faultyRecvReq) Wait() error {
	if r.resolved {
		return r.err
	}
	return r.resolve(r.inner.Wait())
}

// Test polls the underlying request when it supports polling; transports
// without comm.Tester report not-done, leaving completion to Wait.
func (r *faultyRecvReq) Test() (bool, error) {
	if r.resolved {
		return true, r.err
	}
	done, err, ok := comm.TryTest(r.inner)
	if !ok || !done {
		return false, nil
	}
	return true, r.resolve(err)
}

func (r *faultyRecvReq) Len() int { return r.inner.Len() }

// Now forwards Clock when the wrapped communicator tracks virtual time.
func (f *faultyComm) Now() float64 {
	if cl, ok := f.inner.(comm.Clock); ok {
		return cl.Now()
	}
	return 0
}

// HasClock implements comm.ClockProber.
func (f *faultyComm) HasClock() bool {
	_, ok := comm.VirtualClock(f.inner)
	return ok
}

// SetOpTimeout forwards Deadliner (no-op otherwise), so fault-tolerant
// sessions keep their deadline guarantees under injected chaos.
func (f *faultyComm) SetOpTimeout(d time.Duration) {
	if dl, ok := f.inner.(comm.Deadliner); ok {
		dl.SetOpTimeout(d)
	}
}

// Failed forwards FailureDetector (nil otherwise).
func (f *faultyComm) Failed() []int {
	if fd, ok := f.inner.(comm.FailureDetector); ok {
		return fd.Failed()
	}
	return nil
}

// PurgeTags forwards Purger (no-op otherwise).
func (f *faultyComm) PurgeTags(lo, hi comm.Tag) {
	if p, ok := f.inner.(comm.Purger); ok {
		p.PurgeTags(lo, hi)
	}
}

// Locality forwards comm.Locator (false otherwise): injected chaos does
// not move ranks between nodes.
func (f *faultyComm) Locality(rank int) (comm.Locality, bool) {
	return comm.LocalityOf(f.inner, rank)
}
