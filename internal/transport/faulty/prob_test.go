package faulty_test

import (
	"errors"
	"testing"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/transport/faulty"
	"exacoll/internal/transport/mem"
)

// TestProbCertainties: probability 1 fails every operation, probability 0
// none, and every injected error wraps ErrInjected.
func TestProbCertainties(t *testing.T) {
	w := mem.NewWorld(2)
	defer w.Close()

	always := faulty.New(w.Comm(0), faulty.Options{Seed: 1, SendProb: 1})
	for i := 0; i < 5; i++ {
		if err := always.Send(1, comm.TagUser, []byte{1}); !errors.Is(err, faulty.ErrInjected) {
			t.Fatalf("SendProb=1 op %d: %v, want ErrInjected", i, err)
		}
	}
	never := faulty.New(w.Comm(0), faulty.Options{Seed: 1, SendProb: 0, RecvProb: 0})
	if err := never.Send(1, comm.TagUser, []byte{1}); err != nil {
		t.Fatalf("prob 0 send: %v", err)
	}

	// RecvProb=1 fails blocking receives after the message arrives, and
	// Irecv requests through Wait.
	if err := w.Comm(0).Send(1, comm.TagUser, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Comm(0).Send(1, comm.TagUser+1, []byte{8}); err != nil {
		t.Fatal(err)
	}
	rc := faulty.New(w.Comm(1), faulty.Options{Seed: 1, RecvProb: 1})
	if _, err := rc.Recv(0, comm.TagUser, make([]byte, 1)); !errors.Is(err, faulty.ErrInjected) {
		t.Fatalf("RecvProb=1 blocking: %v, want ErrInjected", err)
	}
	req, err := rc.Irecv(0, comm.TagUser+1, make([]byte, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := req.Wait(); !errors.Is(err, faulty.ErrInjected) {
		t.Fatalf("RecvProb=1 Wait: %v, want ErrInjected", err)
	}
	if err := req.Wait(); !errors.Is(err, faulty.ErrInjected) {
		t.Fatalf("repeated Wait not memoized: %v", err)
	}
}

// TestProbDeterministicReplay: the same seed on the same rank draws the
// same fault pattern; a different seed draws a different one.
func TestProbDeterministicReplay(t *testing.T) {
	pattern := func(seed int64) []bool {
		w := mem.NewWorld(2)
		defer w.Close()
		c := faulty.New(w.Comm(0), faulty.Options{Seed: seed, SendProb: 0.5})
		var outcomes []bool
		for i := 0; i < 64; i++ {
			err := c.Send(1, comm.TagUser, []byte{1})
			if err != nil && !errors.Is(err, faulty.ErrInjected) {
				t.Fatalf("unexpected error class: %v", err)
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-op fault pattern")
	}
}

// TestPerRankStreams: two ranks with the same seed draw distinct streams
// (faults must not strike every rank in lockstep).
func TestPerRankStreams(t *testing.T) {
	w := mem.NewWorld(2)
	defer w.Close()
	c0 := faulty.New(w.Comm(0), faulty.Options{Seed: 7, SendProb: 0.5})
	c1 := faulty.New(w.Comm(1), faulty.Options{Seed: 7, SendProb: 0.5})
	same := true
	for i := 0; i < 64; i++ {
		e0 := c0.Send(1, comm.TagUser, []byte{1})
		e1 := c1.Send(0, comm.TagUser, []byte{1})
		if (e0 == nil) != (e1 == nil) {
			same = false
		}
	}
	if same {
		t.Fatal("ranks 0 and 1 drew identical fault patterns from one seed")
	}
}

// TestJitter: jitter stretches operations but never injects errors on its
// own.
func TestJitter(t *testing.T) {
	w := mem.NewWorld(2)
	defer w.Close()
	c := faulty.New(w.Comm(0), faulty.Options{Seed: 3, Jitter: 2 * time.Millisecond})
	for i := 0; i < 20; i++ {
		if err := c.Send(1, comm.TagUser, []byte{1}); err != nil {
			t.Fatalf("jitter-only send %d: %v", i, err)
		}
	}
}

// TestProbCapabilityForwarding: the wrapper forwards Deadliner and
// FailureDetector to the transport underneath, so chaos wrappers compose
// with the fault-tolerance layer.
func TestProbCapabilityForwarding(t *testing.T) {
	w := mem.NewWorld(2)
	defer w.Close()
	c := faulty.New(w.Comm(0), faulty.Options{Seed: 3})

	dl, ok := c.(comm.Deadliner)
	if !ok {
		t.Fatal("faulty wrapper does not forward Deadliner")
	}
	dl.SetOpTimeout(20 * time.Millisecond)
	if _, err := c.Recv(1, comm.TagUser, make([]byte, 1)); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("forwarded deadline: %v, want ErrTimeout", err)
	}
	dl.SetOpTimeout(0)

	w.Kill(1)
	fd, ok := c.(comm.FailureDetector)
	if !ok {
		t.Fatal("faulty wrapper does not forward FailureDetector")
	}
	if failed := fd.Failed(); len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("Failed() = %v, want [1]", failed)
	}
}
