package faulty_test

import (
	"errors"
	"testing"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/nbc"
	"exacoll/internal/transport/faulty"
	"exacoll/internal/transport/mem"
	"exacoll/internal/tuning"
)

// TestSendBudgetBlocking: sends succeed until the budget runs out, then
// every further Send fails at post time.
func TestSendBudgetBlocking(t *testing.T) {
	w := mem.NewWorld(2)
	defer w.Close()
	b := faulty.NewBudget(1)
	err := w.Run(func(c comm.Comm) error {
		fc := faulty.Wrap(c, b)
		if fc.Rank() != 0 {
			buf := make([]byte, 1)
			if _, err := fc.Recv(0, comm.TagUser, buf); err != nil {
				return err
			}
			return nil
		}
		if err := fc.Send(1, comm.TagUser, []byte{1}); err != nil {
			return err
		}
		if err := fc.Send(1, comm.TagUser, []byte{2}); !errors.Is(err, faulty.ErrInjected) {
			t.Errorf("second Send: %v, want ErrInjected", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendBudgetIsend: an exhausted budget fails Isend at post time.
func TestSendBudgetIsend(t *testing.T) {
	w := mem.NewWorld(2)
	defer w.Close()
	fc := faulty.New(w.Comm(0), faulty.Options{Send: faulty.NewBudget(0)})
	if _, err := fc.Isend(1, comm.TagUser, []byte{1}); !errors.Is(err, faulty.ErrInjected) {
		t.Fatalf("Isend: %v, want ErrInjected", err)
	}
}

// TestRecvBudgetSurfacesThroughWait: the receive-side budget fails a
// completed Irecv through Request.Wait (and idempotently thereafter),
// while blocking Recv returns the error directly.
func TestRecvBudgetSurfacesThroughWait(t *testing.T) {
	w := mem.NewWorld(2)
	defer w.Close()
	b := faulty.NewBudget(1)
	err := w.Run(func(c comm.Comm) error {
		fc := faulty.New(c, faulty.Options{Recv: b})
		if fc.Rank() == 1 {
			for i := 0; i < 3; i++ {
				if err := fc.Send(0, comm.TagUser, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 1)
		// First receive: inside budget, succeeds.
		if _, err := fc.Recv(1, comm.TagUser, buf); err != nil {
			return err
		}
		// Second: budget exhausted — nonblocking, error from Wait.
		req, err := fc.Irecv(1, comm.TagUser, buf)
		if err != nil {
			return err
		}
		if err := req.Wait(); !errors.Is(err, faulty.ErrInjected) {
			t.Errorf("Irecv Wait: %v, want ErrInjected", err)
		}
		if err := req.Wait(); !errors.Is(err, faulty.ErrInjected) {
			t.Errorf("repeated Wait: %v, want ErrInjected", err)
		}
		// Third: blocking receive reports it directly.
		if _, err := fc.Recv(1, comm.TagUser, buf); !errors.Is(err, faulty.ErrInjected) {
			t.Errorf("blocking Recv: %v, want ErrInjected", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvBudgetSurfacesThroughTest: the injected receive failure also
// comes back through polling (comm.Tester), which is the path the nbc
// progress engine uses.
func TestRecvBudgetSurfacesThroughTest(t *testing.T) {
	w := mem.NewWorld(2)
	defer w.Close()
	err := w.Run(func(c comm.Comm) error {
		fc := faulty.New(c, faulty.Options{Recv: faulty.NewBudget(0)})
		if fc.Rank() == 1 {
			return fc.Send(0, comm.TagUser, []byte{7})
		}
		req, err := fc.Irecv(1, comm.TagUser, make([]byte, 1))
		if err != nil {
			return err
		}
		for {
			done, err, ok := comm.TryTest(req)
			if !ok {
				t.Error("faulty request does not support Test")
				return nil
			}
			if done {
				if !errors.Is(err, faulty.ErrInjected) {
					t.Errorf("Test: %v, want ErrInjected", err)
				}
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDelay checks the injected latency is actually applied.
func TestDelay(t *testing.T) {
	const d = 20 * time.Millisecond
	w := mem.NewWorld(2)
	defer w.Close()
	start := time.Now()
	err := w.Run(func(c comm.Comm) error {
		fc := faulty.New(c, faulty.Options{Delay: d})
		if fc.Rank() == 0 {
			return fc.Send(1, comm.TagUser, []byte{1})
		}
		_, err := fc.Recv(0, comm.TagUser, make([]byte, 1))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("world finished in %v despite %v injected delay", elapsed, d)
	}
}

// TestBlockingCollectiveUnwinds sweeps the failure point through a
// blocking allreduce: every budget either completes or surfaces an
// injected (or orphaned-receive) error — never a hang.
func TestBlockingCollectiveUnwinds(t *testing.T) {
	const p = 4
	tab := &tuning.Table{Machine: "test", Ops: map[string][]tuning.Entry{
		core.OpAllreduce.String(): {{Alg: "allreduce_kring", K: 2}},
	}}
	for _, budget := range []int{0, 1, 3, 7, 1 << 20} {
		w := mem.NewWorld(p)
		b := faulty.NewBudget(budget)
		err := w.Run(func(c comm.Comm) error {
			fc := faulty.Wrap(c, b)
			a := core.Args{
				SendBuf: make([]byte, 64), RecvBuf: make([]byte, 64),
				Op: datatype.Sum, Type: datatype.Float64,
			}
			return tab.Run(fc, core.OpAllreduce, a)
		})
		if budget >= 1<<20 && err != nil {
			t.Fatalf("budget %d: unexpected failure: %v", budget, err)
		}
		if err != nil && !errors.Is(err, faulty.ErrInjected) && !errors.Is(err, comm.ErrClosed) {
			t.Fatalf("budget %d: unexpected error type: %v", budget, err)
		}
		w.Close()
	}
}

// TestNonblockingCollectiveUnwinds does the same sweep through the nbc
// engine: the injected failure must surface from the collective request's
// Wait on some rank, and no rank may hang.
func TestNonblockingCollectiveUnwinds(t *testing.T) {
	const p = 4
	tab := &tuning.Table{Machine: "test", Ops: map[string][]tuning.Entry{
		core.OpAllreduce.String(): {{Alg: "allreduce_recmul", K: 2}},
	}}
	for _, budget := range []int{0, 1, 3, 7, 1 << 20} {
		w := mem.NewWorld(p)
		b := faulty.NewBudget(budget)
		err := w.Run(func(c comm.Comm) error {
			fc := faulty.Wrap(c, b)
			a := core.Args{
				SendBuf: make([]byte, 64), RecvBuf: make([]byte, 64),
				Op: datatype.Sum, Type: datatype.Float64,
			}
			prog, err := nbc.Compile(fc, tab, core.OpAllreduce, a)
			if err != nil {
				return err
			}
			req, err := nbc.NewEngine(fc).Start(prog)
			if err != nil {
				return err
			}
			return req.Wait()
		})
		if budget >= 1<<20 && err != nil {
			t.Fatalf("budget %d: unexpected failure: %v", budget, err)
		}
		if err != nil && !errors.Is(err, faulty.ErrInjected) && !errors.Is(err, comm.ErrClosed) {
			t.Fatalf("budget %d: unexpected error type: %v", budget, err)
		}
		w.Close()
	}
}

// TestNonblockingRecvFaultThroughCollectiveWait injects a receive-side
// fault under a nonblocking collective and checks it surfaces from the
// collective's Wait.
func TestNonblockingRecvFaultThroughCollectiveWait(t *testing.T) {
	const p = 4
	tab := &tuning.Table{Machine: "test", Ops: map[string][]tuning.Entry{
		core.OpAllgather.String(): {{Alg: "allgather_kring", K: 2}},
	}}
	w := mem.NewWorld(p)
	defer w.Close()
	b := faulty.NewBudget(0)
	// The failing rank must propagate the error out of fn so the world
	// aborts (releasing peers with ErrClosed) instead of hanging them.
	err := w.Run(func(c comm.Comm) error {
		fc := faulty.New(c, faulty.Options{Recv: b})
		a := core.Args{SendBuf: make([]byte, 16), RecvBuf: make([]byte, 16*p)}
		prog, err := nbc.Compile(fc, tab, core.OpAllgather, a)
		if err != nil {
			return err
		}
		req, err := nbc.NewEngine(fc).Start(prog)
		if err != nil {
			return err
		}
		return req.Wait()
	})
	if err == nil {
		t.Fatal("collective succeeded despite exhausted receive budget")
	}
	if !errors.Is(err, faulty.ErrInjected) && !errors.Is(err, comm.ErrClosed) {
		t.Fatalf("collective Wait = %v, want ErrInjected or ErrClosed", err)
	}
}
