// Package match implements the (source, tag) FIFO message-matching engine
// shared by the byte-stream transports (tcp, shm). It reproduces the MPI
// point-to-point semantics of the in-memory transport — exact (source,
// tag) matching, FIFO ordering per (source, tag) pair, eager buffering of
// unexpected messages, per-peer sticky failure — behind an API a
// demultiplexing reader goroutine can drive.
//
// Payload buffers handed to Deliver come from the internal/buf pool and
// are owned by the engine from that point: they are recycled once copied
// into a posted receive (or dropped at purge/teardown). DeliverTo is the
// zero-copy variant for transports whose payload already lives in
// addressable memory (the shm handoff region): when a receive is already
// posted, the payload is copied exactly once, straight into the user's
// buffer, with no pooled staging in between.
package match

import (
	"fmt"
	"sync"
	"time"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
)

// Engine is one rank's matching state. Failures are tracked per peer so
// one peer's death does not poison receives still pending from others.
type Engine struct {
	mu         sync.Mutex
	unexpected map[key][][]byte
	posted     map[key][]*Recv
	peerErr    map[int]error
	closed     error
}

type key struct {
	src int
	tag comm.Tag
}

// Recv is one posted receive. Wait on it through the Request wrapper
// (Engine.Request) or directly via WaitDone.
type Recv struct {
	buf  []byte
	done chan struct{}
	n    int
	err  error
}

func (r *Recv) wait() error {
	<-r.done
	return r.err
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{
		unexpected: make(map[key][][]byte),
		posted:     make(map[key][]*Recv),
		peerErr:    make(map[int]error),
	}
}

// Deliver hands an inbound payload — a pool-owned buffer — to its matching
// receive, or parks it on the unexpected queue. The engine owns the buffer
// from here: it is recycled once copied into a receive (or dropped).
func (e *Engine) Deliver(src int, tag comm.Tag, payload []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed != nil || e.peerErr[src] != nil {
		scratch.Put(payload)
		return
	}
	k := key{src, tag}
	if prs := e.posted[k]; len(prs) > 0 {
		pr := prs[0]
		if len(prs) == 1 {
			delete(e.posted, k)
		} else {
			e.posted[k] = prs[1:]
		}
		pr.complete(payload)
		scratch.Put(payload)
		return
	}
	e.unexpected[k] = append(e.unexpected[k], payload)
}

// DeliverTo delivers an n-byte message whose payload is produced by read —
// a callback that must fill exactly its argument (e.g. a copy out of a
// shared-memory region). When a matching receive is already posted and
// large enough, read writes straight into the user's buffer: one copy
// end-to-end. Otherwise the payload is staged in a pooled buffer and
// parked (or dropped on truncation into the posted receive's error).
//
// The caller must invoke DeliverTo for one source from a single goroutine
// (the transport's per-peer reader), which preserves FIFO per (source,
// tag). read's error is returned verbatim and fails the receive it was
// targeting; the caller is expected to tear the peer down in response.
func (e *Engine) DeliverTo(src int, tag comm.Tag, n int, read func(dst []byte) error) error {
	k := key{src, tag}
	e.mu.Lock()
	if e.closed != nil || e.peerErr[src] != nil {
		e.mu.Unlock()
		// Still consume the payload to keep the producer's stream coherent.
		b := scratch.Get(n)
		err := read(b)
		scratch.Put(b)
		return err
	}
	var pr *Recv
	if prs := e.posted[k]; len(prs) > 0 && len(prs[0].buf) >= n {
		pr = prs[0]
		if len(prs) == 1 {
			delete(e.posted, k)
		} else {
			e.posted[k] = prs[1:]
		}
	}
	e.mu.Unlock()
	if pr != nil {
		// The receive was unlinked above, so the engine can no longer cancel
		// or purge it: this fill-then-complete is race-free.
		if err := read(pr.buf[:n]); err != nil {
			pr.err = err
			close(pr.done)
			return err
		}
		pr.n = n
		close(pr.done)
		return nil
	}
	payload := scratch.Get(n)
	if err := read(payload); err != nil {
		scratch.Put(payload)
		return err
	}
	e.Deliver(src, tag, payload)
	return nil
}

func (pr *Recv) complete(payload []byte) {
	if len(payload) > len(pr.buf) {
		pr.err = fmt.Errorf("%w: have %d bytes, message is %d",
			comm.ErrTruncated, len(pr.buf), len(payload))
	} else {
		copy(pr.buf, payload)
		pr.n = len(payload)
	}
	close(pr.done)
}

// Post registers a receive into buf, matching an already-buffered message
// if one exists. Already-buffered messages are deliverable even if the
// peer has since died (they were "on the wire").
func (e *Engine) Post(src int, tag comm.Tag, buf []byte) (*Recv, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed != nil {
		return nil, e.closed
	}
	pr := &Recv{buf: buf, done: make(chan struct{})}
	k := key{src, tag}
	if msgs := e.unexpected[k]; len(msgs) > 0 {
		m := msgs[0]
		if len(msgs) == 1 {
			delete(e.unexpected, k)
		} else {
			e.unexpected[k] = msgs[1:]
		}
		pr.complete(m)
		scratch.Put(m)
		return pr, nil
	}
	if err := e.peerErr[src]; err != nil {
		return nil, err
	}
	e.posted[k] = append(e.posted[k], pr)
	return pr, nil
}

// Cancel removes a still-pending posted receive and fails it with err,
// reporting false when it already completed concurrently (in which case
// its recorded result stands).
func (e *Engine) Cancel(src int, tag comm.Tag, pr *Recv, err error) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := key{src, tag}
	prs := e.posted[k]
	for i, q := range prs {
		if q != pr {
			continue
		}
		if len(prs) == 1 {
			delete(e.posted, k)
		} else {
			e.posted[k] = append(prs[:i:i], prs[i+1:]...)
		}
		pr.err = err
		close(pr.done)
		return true
	}
	return false
}

// PeerError returns the recorded failure of a peer (nil while healthy).
func (e *Engine) PeerError(peer int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed != nil {
		return e.closed
	}
	return e.peerErr[peer]
}

// PeerFailed reports whether a peer has a recorded failure.
func (e *Engine) PeerFailed(peer int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.peerErr[peer] != nil
}

// FailedPeers lists peers with recorded failures (unordered).
func (e *Engine) FailedPeers() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []int
	for peer := range e.peerErr {
		out = append(out, peer)
	}
	return out
}

// PurgeTags drops buffered messages with tags in [lo, hi) and cancels
// receives still posted there with ErrTimeout (the quiesce of a retired
// collective epoch).
func (e *Engine) PurgeTags(lo, hi comm.Tag) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for k, msgs := range e.unexpected {
		if k.tag >= lo && k.tag < hi {
			for _, m := range msgs {
				scratch.Put(m)
			}
			delete(e.unexpected, k)
		}
	}
	for k, prs := range e.posted {
		if k.tag < lo || k.tag >= hi {
			continue
		}
		for _, pr := range prs {
			pr.err = fmt.Errorf("%w: receive purged with its tag window", comm.ErrTimeout)
			close(pr.done)
		}
		delete(e.posted, k)
	}
}

// FailPeer marks one peer dead: receives pending on that peer error out,
// and future posts for it fail, but traffic with other peers continues.
func (e *Engine) FailPeer(peer int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed != nil || e.peerErr[peer] != nil {
		return
	}
	e.peerErr[peer] = err
	for k, prs := range e.posted {
		if k.src != peer {
			continue
		}
		for _, pr := range prs {
			pr.err = err
			close(pr.done)
		}
		delete(e.posted, k)
	}
}

// Fail poisons the whole engine (local Close): all pending and future
// receives error with err.
func (e *Engine) Fail(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed != nil {
		return
	}
	e.closed = err
	for k, prs := range e.posted {
		for _, pr := range prs {
			pr.err = err
			close(pr.done)
		}
		delete(e.posted, k)
	}
	for k, msgs := range e.unexpected {
		for _, m := range msgs {
			scratch.Put(m)
		}
		delete(e.unexpected, k)
	}
}

// UnexpectedCount reports how many (source, tag) queues currently hold
// buffered unexpected messages — a test observability hook.
func (e *Engine) UnexpectedCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.unexpected)
}

// Request wraps a posted receive as a comm.Request carrying the per-op
// timeout captured at post time. It implements comm.Tester.
func (e *Engine) Request(pr *Recv, src int, tag comm.Tag, timeout time.Duration) comm.Request {
	return &Req{pr: pr, e: e, src: src, tag: tag, timeout: timeout}
}

// Req is the comm.Request handle of a posted receive.
type Req struct {
	pr      *Recv
	e       *Engine
	src     int
	tag     comm.Tag
	timeout time.Duration
}

// Wait implements comm.Request.
func (r *Req) Wait() error {
	if r.timeout <= 0 {
		return r.pr.wait()
	}
	timer := time.NewTimer(r.timeout)
	defer timer.Stop()
	select {
	case <-r.pr.done:
		return r.pr.err
	case <-timer.C:
		terr := fmt.Errorf("%w: no message from rank %d tag %d within %v",
			comm.ErrTimeout, r.src, r.tag, r.timeout)
		if r.e.Cancel(r.src, r.tag, r.pr, terr) {
			return terr
		}
		return r.pr.wait()
	}
}

// Len implements comm.Request.
func (r *Req) Len() int { return r.pr.n }

// Test implements comm.Tester: a nonblocking completion poll.
func (r *Req) Test() (bool, error) {
	select {
	case <-r.pr.done:
		return true, r.pr.err
	default:
		return false, nil
	}
}
