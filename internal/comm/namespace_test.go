package comm

import (
	"testing"
	"time"
)

// tagSpy records every operation's translated (peer, tag) and purge range.
type tagSpy struct {
	rank, size int
	sends      []Tag
	recvs      []Tag
	purges     [][2]Tag
	timeout    time.Duration
	failed     []int
}

func (s *tagSpy) Rank() int         { return s.rank }
func (s *tagSpy) Size() int         { return s.size }
func (s *tagSpy) ChargeCompute(int) {}
func (s *tagSpy) Send(to int, tag Tag, buf []byte) error {
	s.sends = append(s.sends, tag)
	return nil
}
func (s *tagSpy) Recv(from int, tag Tag, buf []byte) (int, error) {
	s.recvs = append(s.recvs, tag)
	return 0, nil
}
func (s *tagSpy) Isend(to int, tag Tag, buf []byte) (Request, error) {
	s.sends = append(s.sends, tag)
	return &fakeReq{}, nil
}
func (s *tagSpy) Irecv(from int, tag Tag, buf []byte) (Request, error) {
	s.recvs = append(s.recvs, tag)
	return &fakeReq{}, nil
}
func (s *tagSpy) PurgeTags(lo, hi Tag)         { s.purges = append(s.purges, [2]Tag{lo, hi}) }
func (s *tagSpy) SetOpTimeout(d time.Duration) { s.timeout = d }
func (s *tagSpy) Failed() []int                { return s.failed }

// TestNamespaceLayout pins the in-window layout: pieces tile the window in
// ascending destination order without overlap, and the total width — the
// whole translated session tag space — fits in one namespace slot.
func TestNamespaceLayout(t *testing.T) {
	var prevEnd Tag
	for i, p := range nsPieces {
		if p.dst != prevEnd {
			t.Errorf("piece %d: dst %d, want %d (pieces must tile)", i, p.dst, prevEnd)
		}
		if p.srcHi <= p.srcLo {
			t.Errorf("piece %d: empty source range [%d,%d)", i, p.srcLo, p.srcHi)
		}
		if p.mod != 0 && p.mod > p.srcHi-p.srcLo {
			t.Errorf("piece %d: mod %d wider than source range", i, p.mod)
		}
		prevEnd = p.dst + p.width()
	}
	if prevEnd > NamespaceStride {
		t.Fatalf("layout width %d exceeds NamespaceStride %d", prevEnd, NamespaceStride)
	}
	if NamespaceSlots < 4000 {
		t.Fatalf("NamespaceSlots = %d, want thousands of concurrent sessions", NamespaceSlots)
	}
	// The namespace region must sit above every singleton-session range.
	if NamespaceBase < TagFlightBase+FlightTagWidth {
		t.Fatalf("NamespaceBase %d overlaps the singleton session layout (< %d)",
			NamespaceBase, TagFlightBase+FlightTagWidth)
	}
	// And the last slot's window must stay within the signed-32-bit space.
	_, hi := NamespaceWindow(NamespaceSlots - 1)
	if int64(hi) > 1<<31-1 && hi <= 0 {
		t.Fatalf("last window end %d overflows Tag", hi)
	}
}

// TestNamespaceTranslation verifies the piecewise map: every region of the
// session layout lands inside the slot's window, regions stay disjoint,
// and distinct slots can never produce the same transport tag.
func TestNamespaceTranslation(t *testing.T) {
	spy := &tagSpy{rank: 0, size: 2}
	ns, err := NewNamespace(spy, 3)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ns.Window()
	cases := []struct {
		name string
		tag  Tag
	}{
		{"user-first", TagUser},
		{"user-last", TagUser + NamespaceUserTags - 1},
		{"coll-base", TagCollBase},
		{"coll-top", TagCollBase + FTEpochStride - 1},
		{"nbc-first", TagNBCBase},
		{"nbc-last", TagFTBase - 1},
		{"ft-seq", TagFTBase + 17},
		{"ft-epoch0", TagFTEpochBase},
		{"ft-epoch-last", TagFlightBase - 1},
		{"flight", TagFlightBase + FlightTagWidth - 1},
	}
	seen := map[Tag]string{}
	for _, c := range cases {
		if err := ns.Send(1, c.tag, nil); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got := spy.sends[len(spy.sends)-1]
		if got < lo || got >= hi {
			t.Errorf("%s: tag %d translated to %d, outside window [%d,%d)", c.name, c.tag, got, lo, hi)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("%s and %s collide on transport tag %d", c.name, prev, got)
		}
		seen[got] = c.name
	}

	// Relative offsets inside a region are preserved (FIFO streams stay
	// distinct streams).
	spy.sends = nil
	ns.Send(1, TagNBCBase+5, nil)
	ns.Send(1, TagNBCBase+6, nil)
	if spy.sends[1] != spy.sends[0]+1 {
		t.Errorf("nbc offsets not preserved: %d then %d", spy.sends[0], spy.sends[1])
	}

	// Distinct slots translate the same tag into disjoint windows.
	spy2 := &tagSpy{rank: 0, size: 2}
	ns2, _ := NewNamespace(spy2, 4)
	ns2.Send(1, TagNBCBase+5, nil)
	if spy2.sends[0] == spy.sends[0] {
		t.Errorf("slots 3 and 4 collide on transport tag %d", spy.sends[0])
	}
	lo2, _ := ns2.Window()
	if lo2 != hi {
		t.Errorf("adjacent windows not contiguous: slot 3 ends %d, slot 4 starts %d", hi, lo2)
	}

	// Receive paths translate identically to send paths.
	if _, err := ns.Recv(1, TagCollBase, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Irecv(1, TagCollBase, nil); err != nil {
		t.Fatal(err)
	}
	if spy.recvs[0] != spy.recvs[1] {
		t.Errorf("Recv and Irecv disagree: %d vs %d", spy.recvs[0], spy.recvs[1])
	}

	// Untranslatable tags fail loudly rather than escaping the window.
	if err := ns.Send(1, NamespaceUserTags, nil); err == nil {
		t.Error("user tag beyond NamespaceUserTags must be rejected")
	}
	if _, err := ns.Recv(1, TagCollBase+FTEpochStride, nil); err == nil {
		t.Error("tag in the inter-region gap must be rejected")
	}
	if _, err := ns.Isend(1, NamespaceBase, nil); err == nil {
		t.Error("already-namespaced tag must be rejected (no double wrapping)")
	}
}

// TestNamespaceFTEpochFold pins the folded fault-tolerance epoch map:
// epochs NamespaceFTEpochs apart share a window (safe because retired
// windows are purged on advance), nearer epochs do not.
func TestNamespaceFTEpochFold(t *testing.T) {
	spy := &tagSpy{rank: 0, size: 2}
	ns, _ := NewNamespace(spy, 0)
	epochTag := func(e int) Tag { return TagFTEpochBase + Tag(e)*FTEpochStride }
	ns.Send(1, epochTag(0), nil)
	ns.Send(1, epochTag(NamespaceFTEpochs-1), nil)
	ns.Send(1, epochTag(NamespaceFTEpochs), nil)
	if spy.sends[0] == spy.sends[1] {
		t.Errorf("epochs 0 and %d must stay distinct", NamespaceFTEpochs-1)
	}
	if spy.sends[0] != spy.sends[2] {
		t.Errorf("epoch %d should fold onto epoch 0: %d vs %d",
			NamespaceFTEpochs, spy.sends[2], spy.sends[0])
	}
}

// TestNamespacePurge verifies purge-range translation, including the split
// at the folded region's wrap point and whole-window purges.
func TestNamespacePurge(t *testing.T) {
	spy := &tagSpy{rank: 0, size: 2}
	ns, _ := NewNamespace(spy, 2)

	// A direct-mapped range translates to a single range of equal width.
	ns.PurgeTags(TagCollBase, TagCollBase+0x100)
	if len(spy.purges) != 1 || spy.purges[0][1]-spy.purges[0][0] != 0x100 {
		t.Fatalf("direct purge: got %v", spy.purges)
	}
	collLo := spy.purges[0][0]
	wlo, whi := ns.Window()
	if collLo < wlo || spy.purges[0][1] > whi {
		t.Fatalf("purge range %v escapes window [%d,%d)", spy.purges[0], wlo, whi)
	}

	// Purging one retired FT epoch window is the quiesce the ft layer
	// performs on advance; it must stay a single aligned window.
	spy.purges = nil
	e := NamespaceFTEpochs + 3 // folds to window 3
	ns.PurgeTags(TagFTEpochBase+Tag(e)*FTEpochStride, TagFTEpochBase+Tag(e+1)*FTEpochStride)
	if len(spy.purges) != 1 || spy.purges[0][1]-spy.purges[0][0] != FTEpochStride {
		t.Fatalf("epoch purge: got %v", spy.purges)
	}

	// A range crossing the fold's wrap point splits into two arcs.
	spy.purges = nil
	last := NamespaceFTEpochs - 1
	ns.PurgeTags(TagFTEpochBase+Tag(last)*FTEpochStride, TagFTEpochBase+Tag(last+2)*FTEpochStride)
	if len(spy.purges) != 2 {
		t.Fatalf("wrapping purge: got %v, want two arcs", spy.purges)
	}
	total := (spy.purges[0][1] - spy.purges[0][0]) + (spy.purges[1][1] - spy.purges[1][0])
	if total != 2*FTEpochStride {
		t.Errorf("wrapping purge covers %d tags, want %d", total, 2*FTEpochStride)
	}

	// A session-wide purge (the slot-recycle fence) covers every piece but
	// never exceeds the folded region's width.
	spy.purges = nil
	ns.PurgeTags(0, 1<<31-1)
	var covered Tag
	for _, pr := range spy.purges {
		if pr[0] < wlo || pr[1] > whi {
			t.Errorf("purge %v escapes window", pr)
		}
		covered += pr[1] - pr[0]
	}
	want := nsPieces[len(nsPieces)-1].dst + nsPieces[len(nsPieces)-1].width()
	if covered != want {
		t.Errorf("full purge covered %d tags, want the whole layout %d", covered, want)
	}
}

// TestNamespaceCapabilities verifies forwarding and graceful degradation.
func TestNamespaceCapabilities(t *testing.T) {
	spy := &tagSpy{rank: 1, size: 4, failed: []int{3}}
	ns, _ := NewNamespace(spy, 0)
	if ns.Rank() != 1 || ns.Size() != 4 {
		t.Errorf("identity not forwarded: rank %d size %d", ns.Rank(), ns.Size())
	}
	if ns.Unwrap() != Comm(spy) {
		t.Error("Unwrap must reveal the shared comm")
	}
	ns.SetOpTimeout(time.Second)
	if spy.timeout != time.Second {
		t.Error("Deadliner not forwarded")
	}
	if f := ns.Failed(); len(f) != 1 || f[0] != 3 {
		t.Errorf("FailureDetector not forwarded: %v", f)
	}
	if ns.HasClock() {
		t.Error("spy has no virtual clock")
	}
	if _, ok := ns.Locality(0); ok {
		t.Error("spy has no locality")
	}

	// Slot validation.
	if _, err := NewNamespace(spy, -1); err == nil {
		t.Error("negative slot accepted")
	}
	if _, err := NewNamespace(spy, NamespaceSlots); err == nil {
		t.Error("slot beyond NamespaceSlots accepted")
	}
}
