// Package comm defines the communicator abstraction that every collective
// algorithm in this repository is written against.
//
// The interface mirrors the MPI point-to-point layer that MPICH collective
// algorithms are built on: blocking Send/Recv, nonblocking Isend/Irecv with
// Wait, (source, tag) matching with FIFO ordering per (source, tag) pair,
// and eager buffering so a blocking Send never deadlocks against a matching
// Recv posted later.
//
// Three substrates implement Comm:
//
//   - transport/mem:  N ranks as goroutines inside one process (real
//     parallelism, used for correctness tests and wall-clock benchmarks);
//   - transport/tcp:  N OS processes over TCP (used by cmd/gcarun);
//   - simnet:         a deterministic discrete-event simulator of an
//     exascale machine (used to regenerate the paper's figures).
//
// Collective algorithms live in internal/core and never know which
// substrate they run on.
package comm

import (
	"errors"
	"fmt"
	"time"
)

// Tag identifies a message stream between two ranks. Matching is on the
// exact (source, tag) pair; there are no wildcards, which keeps all three
// substrates deterministic.
type Tag int32

// Reserved tag ranges. Collective algorithms use tags derived from these
// bases so that point-to-point traffic issued by user code (tags >= TagUser)
// can never match collective-internal messages.
//
// Tag-space layout (the epoch convention):
//
//	[TagUser, TagCollBase)      application point-to-point traffic
//	[TagCollBase, TagNBCBase)   blocking collectives (internal/core): each
//	                            algorithm family owns a fixed base
//	                            (TagCollBase + 0x000, +0x100, ... +0xf00)
//	                            and all rounds of one call share it —
//	                            per-(source, tag) FIFO ordering makes that
//	                            safe because a rank runs at most one
//	                            blocking collective at a time.
//	[TagNBCBase, TagFTBase)     nonblocking collectives (internal/nbc).
//	[TagFTBase, TagFTEpochBase) fault-tolerance control traffic: the
//	                            error-agreement rounds of internal/ft.
//	[TagFTEpochBase, ...)       re-homed blocking-collective windows for
//	                            fault-tolerant sessions: after an agreed
//	                            failure the communicator's collective
//	                            epoch is retired, and the next collective
//	                            runs its family tags inside a fresh
//	                            FTEpochStride-sized window so stragglers
//	                            from the aborted epoch can never match.
//
// Nonblocking collectives can be outstanding concurrently, so sharing one
// family base would cross-match their traffic. Instead every started
// collective is assigned an issue epoch e — a per-communicator counter
// that is identical on all ranks because MPI-3 requires nonblocking
// collectives to be issued in the same order everywhere — and its
// messages use the sub-range
//
//	[TagNBCBase + (e mod NBCTagEpochs)·NBCTagStride, ... + NBCTagStride)
//
// Epochs therefore never collide while fewer than NBCTagEpochs collectives
// are in flight, and the nbc engine force-completes its oldest request
// before reusing a wrapped epoch. User traffic at TagUser and blocking
// collectives at their family bases can never match NBC-internal messages.
const (
	// TagCollBase is the first tag reserved for collective-internal
	// messages. Each blocking algorithm family derives its tag as
	// TagCollBase + family offset.
	TagCollBase Tag = 1 << 20
	// TagNBCBase is the first tag reserved for nonblocking collectives.
	// It lies above every blocking family base (TagCollBase + 0xf00 — the
	// generalized-allreduce family of internal/core — is the highest in
	// use; +0xe00 is the vector collectives, +0xd00 the segmented
	// pipelines, +0xc00 the hierarchical composition engine's inter-level
	// hops, internal/topo).
	TagNBCBase Tag = TagCollBase + 0x10000
	// NBCTagStride is the number of tags each nonblocking-collective epoch
	// owns (one per schedule phase; no compiled schedule uses more).
	NBCTagStride = 16
	// NBCTagEpochs is the number of disjoint epoch sub-ranges before the
	// tag window wraps.
	NBCTagEpochs = 4096
	// TagFTBase is the first tag reserved for fault-tolerance control
	// traffic (the agreement rounds of internal/ft). It lies just above
	// the nonblocking-collective range, which ends at
	// TagNBCBase + NBCTagEpochs·NBCTagStride.
	TagFTBase Tag = TagNBCBase + NBCTagEpochs*NBCTagStride
	// FTTagSeqs is the number of disjoint agreement-sequence tags before
	// the fault-tolerance control window wraps. Successive agreements on
	// one communicator use successive tags so a late agreement message
	// can never match a newer round.
	FTTagSeqs = 4096
	// TagFTEpochBase is the first tag of the re-homed blocking-collective
	// windows used by fault-tolerant sessions after a quiesce: collective
	// epoch e >= 1 maps family tag t to
	// TagFTEpochBase + ((e-1) mod FTEpochs)·FTEpochStride + (t - TagCollBase).
	TagFTEpochBase Tag = TagFTBase + FTTagSeqs
	// FTEpochStride is the tag width of one retired-epoch window; it
	// covers every blocking family base (the highest in use is
	// TagCollBase + 0xf00, internal/core's generalized-allreduce family).
	FTEpochStride = 0x1000
	// FTEpochs is the number of disjoint collective-epoch windows before
	// the fault-tolerance tag space wraps.
	FTEpochs = 1024
	// TagFlightBase is the first tag of the flight-recorder collection
	// window (internal/flight): the clock-offset probe ping/pong pair and
	// the ring-gather stream run root <-> rank over these tags. The window
	// sits above the last fault-tolerance epoch window, so collection — a
	// collective that runs after (or between) application collectives —
	// can never match straggler traffic from any other subsystem.
	TagFlightBase Tag = TagFTEpochBase + FTEpochs*FTEpochStride
	// FlightTagWidth is the number of tags the collection window owns.
	FlightTagWidth = 16
	// TagUser is the start of the range available to applications.
	TagUser Tag = 0

	// NamespaceBase is the first tag of the session-namespace region used
	// by the multi-tenant service layer (internal/svc): each namespace
	// slot owns a NamespaceStride-wide window above every singleton-session
	// range, and a Namespace wrapper translates a whole session tag layout
	// — user point-to-point, blocking-collective families, nonblocking
	// epochs, fault-tolerance control and epoch windows, and the flight
	// collection window — into its slot. Sessions in distinct slots can
	// therefore share one transport without any possibility of a tag match
	// across tenants.
	NamespaceBase Tag = 1 << 23
	// NamespaceStride is the tag width of one namespace slot.
	NamespaceStride = 1 << 19
	// NamespaceSlots is the number of disjoint namespace windows that fit
	// between NamespaceBase and the top of the signed-32-bit tag space —
	// 4080 concurrently isolated sessions per shared transport.
	NamespaceSlots = int((1<<31 - int64(NamespaceBase)) / NamespaceStride)
	// NamespaceFTEpochs is the number of fault-tolerance epoch windows a
	// namespace slot keeps distinct before re-use (the full FTEpochs space
	// does not fit in a slot; 64 concurrently straggling retired epochs is
	// far beyond what the purge-on-advance discipline can leave behind).
	NamespaceFTEpochs = 64
	// NamespaceUserTags is the number of application point-to-point tags
	// ([TagUser, NamespaceUserTags)) a namespace slot carries.
	NamespaceUserTags = 4096
)

// Errors returned by communicator operations.
var (
	// ErrRankOutOfRange reports a peer rank outside [0, Size).
	ErrRankOutOfRange = errors.New("comm: rank out of range")
	// ErrTruncated reports a receive buffer smaller than the matched message.
	ErrTruncated = errors.New("comm: message truncated (recv buffer too small)")
	// ErrClosed reports use of a communicator after Close/shutdown.
	ErrClosed = errors.New("comm: communicator closed")
	// ErrDeadlock is returned by the simulator when every rank is blocked
	// on a receive that can never be matched.
	ErrDeadlock = errors.New("comm: deadlock detected (all ranks blocked)")
	// ErrSelfMessage reports a send or receive addressed to the caller
	// itself; algorithms must special-case local data movement.
	ErrSelfMessage = errors.New("comm: send/recv to self not supported")
	// ErrTimeout reports a blocking operation that exceeded the per-op
	// deadline configured through Deadliner.SetOpTimeout (or a context
	// deadline plumbed down to it). The operation is cancelled: a timed-out
	// receive's buffer will not be written afterwards.
	ErrTimeout = errors.New("comm: operation timed out")
	// ErrPeerDead reports an operation addressed to (or waiting on) a rank
	// the transport knows has failed — its process exited, its connection
	// dropped, or its heartbeats stopped.
	ErrPeerDead = errors.New("comm: peer process failed")
)

// Request is the handle for a nonblocking operation. Wait blocks until the
// operation completes and returns its terminal status. Wait is idempotent:
// further calls return the same result. For receives, Len reports the number
// of bytes of the matched message after Wait has returned.
type Request interface {
	// Wait blocks until the operation completes.
	Wait() error
	// Len returns the size in bytes of the completed message. It must be
	// called only after Wait has returned nil. Only receives are required
	// to report a byte count; a transport may return 0 for sends (eager
	// transports share one completed request across all sends rather than
	// allocating per-send state).
	Len() int
}

// Tester is optionally implemented by Requests that support nonblocking
// completion polling (the MPI_Test idiom). Test never blocks: it reports
// whether the operation has completed, and — once done is true — the
// operation's terminal status. Like Wait, Test is idempotent after
// completion, and a completed Test consumes the operation exactly as Wait
// would (calling Wait afterwards returns the same result immediately).
//
// All three built-in substrates implement Tester. The nbc progress engine
// uses it opportunistically via TryTest and degrades to blocking Wait in a
// canonical order when a Request does not support it, so third-party
// transports remain usable.
type Tester interface {
	Test() (done bool, err error)
}

// TryTest polls req for completion if it supports Tester. ok reports
// whether the request supported polling at all; when ok is false, done and
// err are meaningless and the caller must fall back to Wait.
func TryTest(req Request) (done bool, err error, ok bool) {
	t, ok := req.(Tester)
	if !ok {
		return false, nil, false
	}
	done, err = t.Test()
	return done, err, true
}

// Comm is a group of p ranks that can exchange messages. Implementations
// must be safe for each rank to drive from its own goroutine, but a single
// rank's operations are issued sequentially (MPI semantics).
type Comm interface {
	// Rank returns the caller's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the communicator.
	Size() int

	// Send delivers buf to rank `to` with tag `tag`. Eager semantics: the
	// implementation buffers the message, so Send returns without waiting
	// for the matching Recv. buf may be reused once Send returns.
	Send(to int, tag Tag, buf []byte) error
	// Recv blocks until a message from rank `from` with tag `tag` arrives
	// and copies it into buf, returning the message length.
	Recv(from int, tag Tag, buf []byte) (int, error)

	// Isend starts a nonblocking send. buf must not be modified until the
	// returned Request's Wait returns.
	Isend(to int, tag Tag, buf []byte) (Request, error)
	// Irecv starts a nonblocking receive into buf. buf must not be read
	// until the returned Request's Wait returns.
	Irecv(from int, tag Tag, buf []byte) (Request, error)

	// ChargeCompute accounts for local computation over n bytes (the γ term
	// of the paper's cost model, e.g. applying a reduction operator).
	// Real transports treat it as a no-op; the simulator advances the
	// calling rank's virtual clock by γ·n.
	ChargeCompute(n int)
}

// Clock is implemented by substrates that track virtual time (the
// simulator). Figure harnesses assert this interface to read per-rank
// completion times.
type Clock interface {
	// Now returns the calling rank's current virtual time in seconds.
	Now() float64
}

// ClockProber is implemented by wrappers (SubComm, the FT epoch comm, the
// faulty chaos wrapper) that expose a Now method unconditionally but only
// forward to a virtual clock when one actually exists underneath. Code
// that changes behaviour based on virtual time must use VirtualClock, not
// a bare Clock type assertion, or a wrapper over a wall-clock transport
// would be mistaken for the simulator.
type ClockProber interface {
	// HasClock reports whether a virtual clock genuinely backs Now.
	HasClock() bool
}

// VirtualClock returns c's virtual clock when one genuinely exists:
// either c implements Clock natively, or it is a probing wrapper whose
// chain bottoms out at a real clock.
func VirtualClock(c Comm) (Clock, bool) {
	cl, ok := c.(Clock)
	if !ok {
		return nil, false
	}
	if p, ok := c.(ClockProber); ok && !p.HasClock() {
		return nil, false
	}
	return cl, true
}

// Deadliner is optionally implemented by communicators whose blocking
// operations can be bounded. After SetOpTimeout(d) with d > 0, any single
// blocking operation — a Send that cannot drain, a Recv or Request.Wait
// with no matching message — fails with an error wrapping ErrTimeout
// instead of hanging when a peer is dead or wedged. d <= 0 restores
// unbounded blocking. The setting applies to operations issued by the
// calling rank's handle only and may be changed between operations.
//
// The mem and tcp transports implement Deadliner (with full cancellation:
// a timed-out receive is deregistered, so its buffer is never written
// later). The simulator does not — its discrete-event kernel already turns
// any global hang into ErrDeadlock deterministically.
type Deadliner interface {
	SetOpTimeout(d time.Duration)
}

// FailureDetector is optionally implemented by communicators that track
// per-peer liveness (TCP heartbeats, the mem world's rank-kill switch).
// Failed returns the ranks this rank currently knows to be dead, in
// ascending order. Knowledge is local and monotone: a rank reported
// failed stays failed. Use the internal/ft agreement protocol to turn
// these local views into a consistent global one.
type FailureDetector interface {
	Failed() []int
}

// Locality describes one rank's position in the machine: the node hosting
// it, its index among the ranks sharing that node, and the node-level
// resources the paper's selection guidelines key on (PPN, NIC ports).
type Locality struct {
	// Node identifies the rank's node. Substrates report a stable id that
	// is equal for co-located ranks and distinct across nodes; ids need
	// not be dense — internal/topo re-densifies them when it builds a map.
	Node int
	// LocalRank is the rank's index among the ranks on its node, counted
	// in ascending world-rank order.
	LocalRank int
	// PPN is the number of ranks sharing a node (the maximum over nodes
	// when the world size is not divisible).
	PPN int
	// Ports is the number of NIC ports per node (0 when unknown).
	Ports int
}

// Locator is optionally implemented by communicators that know the
// rank → node mapping of their world: the simulator (from its machine
// spec and placement), the TCP transport (host-keyed during rendezvous),
// and the mem world (declared synthetically for tests). Locality reports
// where `rank` lives; ok is false when the communicator has no locality
// knowledge for that rank. Wrappers (SubComm, the metrics and FT comms)
// forward the query and report their inner communicator's answer, so
// capability probing composes like Clock and Deadliner.
type Locator interface {
	Locality(rank int) (Locality, bool)
}

// LocalityOf queries c's locality knowledge for one rank, reporting
// (zero, false) when c does not implement Locator at all.
func LocalityOf(c Comm, rank int) (Locality, bool) {
	l, ok := c.(Locator)
	if !ok {
		return Locality{}, false
	}
	return l.Locality(rank)
}

// Purger is optionally implemented by communicators that can quiesce a
// retired tag window: PurgeTags discards every buffered (unexpected)
// inbound message whose tag lies in [lo, hi) and cancels any receive
// still posted in that range with ErrTimeout. The fault-tolerance layer
// calls it after an agreed collective failure so stragglers of the
// aborted epoch can never match a later collective.
type Purger interface {
	PurgeTags(lo, hi Tag)
}

// CheckPeer validates a peer rank for a p-rank communicator and rejects
// self-messaging. Shared by all transports.
func CheckPeer(self, peer, size int) error {
	if peer < 0 || peer >= size {
		return fmt.Errorf("%w: peer %d, size %d", ErrRankOutOfRange, peer, size)
	}
	if peer == self {
		return ErrSelfMessage
	}
	return nil
}

// WaitAll waits on every request (so no request is leaked mid-flight) and
// returns all errors encountered, combined with errors.Join — nil if every
// wait succeeded. Joining instead of dropping all but the first keeps
// instrumented failure counts consistent with the errors callers observe.
func WaitAll(reqs ...Request) error {
	var errs []error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if err := r.Wait(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// SendRecver is an optional interface for communicators that handle the
// whole SendRecv exchange in one call. The flight recorder's wrapper uses
// it to amortize one clock read across the exchange's trace events — the
// difference between <3% and ~10% overhead on the recursive-doubling
// hot path, where SendRecv is the only communication primitive.
type SendRecver interface {
	SendRecv(to int, sendBuf []byte, from int, recvBuf []byte, tag Tag) (int, error)
}

// SendRecv performs a simultaneous exchange: a nonblocking send of sendBuf
// to `to` and a receive of recvBuf from `from`, both with tag `tag`. This is
// the MPI_Sendrecv idiom used by ring and pairwise-exchange algorithms;
// using Isend avoids the head-to-head deadlock of two blocking sends on
// rendezvous transports.
func SendRecv(c Comm, to int, sendBuf []byte, from int, recvBuf []byte, tag Tag) (int, error) {
	if sr, ok := c.(SendRecver); ok {
		return sr.SendRecv(to, sendBuf, from, recvBuf, tag)
	}
	sreq, err := c.Isend(to, tag, sendBuf)
	if err != nil {
		return 0, err
	}
	n, rerr := c.Recv(from, tag, recvBuf)
	serr := sreq.Wait()
	if rerr != nil {
		return n, rerr
	}
	return n, serr
}
