package comm

import (
	"errors"
	"testing"
)

// fakeReq is a canned request for WaitAll tests.
type fakeReq struct {
	err    error
	n      int
	waited *int
}

func (r *fakeReq) Wait() error {
	if r.waited != nil {
		*r.waited++
	}
	return r.err
}

func (r *fakeReq) Len() int { return r.n }

// TestCheckPeer covers the validation matrix.
func TestCheckPeer(t *testing.T) {
	if err := CheckPeer(0, 1, 2); err != nil {
		t.Errorf("valid peer: %v", err)
	}
	if err := CheckPeer(0, 2, 2); !errors.Is(err, ErrRankOutOfRange) {
		t.Errorf("want ErrRankOutOfRange, got %v", err)
	}
	if err := CheckPeer(0, -1, 2); !errors.Is(err, ErrRankOutOfRange) {
		t.Errorf("want ErrRankOutOfRange, got %v", err)
	}
	if err := CheckPeer(1, 1, 2); !errors.Is(err, ErrSelfMessage) {
		t.Errorf("want ErrSelfMessage, got %v", err)
	}
}

// TestWaitAll checks that every request is waited and that every error —
// not just the first — is reported through the joined result.
func TestWaitAll(t *testing.T) {
	counts := make([]int, 3)
	boom := errors.New("boom")
	bang := errors.New("bang")
	reqs := []Request{
		&fakeReq{waited: &counts[0]},
		&fakeReq{err: boom, waited: &counts[1]},
		&fakeReq{err: bang, waited: &counts[2]},
	}
	err := WaitAll(reqs...)
	if !errors.Is(err, boom) {
		t.Errorf("joined error lost boom: %v", err)
	}
	if !errors.Is(err, bang) {
		t.Errorf("joined error lost bang: %v", err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Errorf("request %d waited %d times", i, c)
		}
	}
	if err := WaitAll(); err != nil {
		t.Errorf("empty WaitAll: %v", err)
	}
	if err := WaitAll(nil, &fakeReq{}); err != nil {
		t.Errorf("nil request skipped: %v", err)
	}
}

// TestTagRanges documents the reserved collective tag space.
func TestTagRanges(t *testing.T) {
	if TagUser >= TagCollBase {
		t.Error("user tags must sit below the collective-reserved range")
	}
}
