package comm

import (
	"fmt"
	"time"
)

// nsPiece maps one source tag range of the standard session layout into an
// offset inside a namespace window. A non-zero mod folds the (larger)
// source range into a mod-wide destination region: (t−srcLo) mod mod.
type nsPiece struct {
	srcLo, srcHi Tag
	dst          Tag // offset inside the window
	mod          Tag // 0 = direct (srcHi−srcLo wide), else folded
}

// width returns the destination width of the piece.
func (p nsPiece) width() Tag {
	if p.mod != 0 {
		return p.mod
	}
	return p.srcHi - p.srcLo
}

// nsPieces is the compact in-window layout of one session tag space. The
// pieces tile the window in ascending destination order; their total width
// must stay below NamespaceStride (checked by TestNamespaceLayout).
//
// Only the fault-tolerance epoch region is folded (FTEpochs → 64 windows):
// epochs are strictly sequential and each retired window is purged at the
// advance that retires it, so two live windows 64 epochs apart cannot
// coexist. Every other range maps 1:1, preserving all engine invariants
// (the nbc allocator's 4096-epoch wraparound guard in particular).
var nsPieces = buildNSPieces()

func buildNSPieces() []nsPiece {
	pieces := []nsPiece{
		{srcLo: TagUser, srcHi: TagUser + NamespaceUserTags},                                  // application p2p
		{srcLo: TagCollBase, srcHi: TagCollBase + FTEpochStride},                              // blocking families (epoch-0 window)
		{srcLo: TagNBCBase, srcHi: TagFTBase},                                                 // nonblocking epochs, full width
		{srcLo: TagFTBase, srcHi: TagFTEpochBase},                                             // ft agreement sequences
		{srcLo: TagFTEpochBase, srcHi: TagFlightBase, mod: NamespaceFTEpochs * FTEpochStride}, // ft epoch windows, folded
		{srcLo: TagFlightBase, srcHi: TagFlightBase + FlightTagWidth},                         // flight collection window
	}
	var off Tag
	for i := range pieces {
		pieces[i].dst = off
		off += pieces[i].width()
	}
	if off > NamespaceStride {
		panic("comm: namespace layout exceeds NamespaceStride")
	}
	return pieces
}

// NamespaceWindow returns the concrete tag window [lo, hi) owned by a
// namespace slot on the shared transport. Purging it (Purger.PurgeTags)
// quiesces every message the slot's session could ever have in flight —
// the fence the service layer applies before recycling a slot.
func NamespaceWindow(slot int) (lo, hi Tag) {
	lo = NamespaceBase + Tag(slot)*NamespaceStride
	return lo, lo + NamespaceStride
}

// Namespace presents a private copy of the full session tag space on top
// of a shared communicator: every tag a session can use — application
// point-to-point, blocking-collective families, nonblocking-collective
// epochs, fault-tolerance agreement and epoch windows, flight collection —
// is translated into the slot's disjoint NamespaceStride-wide window. Two
// sessions in different slots share the transport's connections (and, for
// TCP, its sockets) but can never match each other's messages.
//
// The wrapper forwards every capability of the communicator it wraps
// (Clock, Deadliner, FailureDetector, Locator, Purger, SendRecver) with
// tag-window translation where tags are involved, and implements Unwrap
// so capability probes that walk wrapper chains — the flight recorder's
// RecorderOf in particular — keep working through the service layer.
type Namespace struct {
	inner Comm
	slot  int
	base  Tag
}

// NewNamespace wraps c in namespace slot (0 <= slot < NamespaceSlots).
// Every rank of one logical session must use the same slot, and two
// concurrent sessions sharing a transport must use different slots.
func NewNamespace(c Comm, slot int) (*Namespace, error) {
	if slot < 0 || slot >= NamespaceSlots {
		return nil, fmt.Errorf("comm: namespace slot %d out of range [0,%d)", slot, NamespaceSlots)
	}
	return &Namespace{inner: c, slot: slot, base: NamespaceBase + Tag(slot)*NamespaceStride}, nil
}

// Slot returns the namespace slot index.
func (n *Namespace) Slot() int { return n.slot }

// Window returns the concrete window [lo, hi) this namespace occupies on
// the shared transport.
func (n *Namespace) Window() (lo, hi Tag) { return NamespaceWindow(n.slot) }

// Unwrap reveals the shared communicator (the errors.Unwrap convention),
// letting capability probes like flight.RecorderOf walk the chain.
func (n *Namespace) Unwrap() Comm { return n.inner }

// xlate maps a session-layout tag into the slot's window.
func (n *Namespace) xlate(t Tag) (Tag, error) {
	for _, p := range nsPieces {
		if t >= p.srcLo && t < p.srcHi {
			off := t - p.srcLo
			if p.mod != 0 {
				off %= p.mod
			}
			return n.base + p.dst + off, nil
		}
	}
	return 0, fmt.Errorf("comm: tag %d outside the namespaced session layout (user tags must be < %d)", t, NamespaceUserTags)
}

// Rank implements Comm.
func (n *Namespace) Rank() int { return n.inner.Rank() }

// Size implements Comm.
func (n *Namespace) Size() int { return n.inner.Size() }

// ChargeCompute implements Comm.
func (n *Namespace) ChargeCompute(nb int) { n.inner.ChargeCompute(nb) }

// Send implements Comm.
func (n *Namespace) Send(to int, tag Tag, buf []byte) error {
	t, err := n.xlate(tag)
	if err != nil {
		return err
	}
	return n.inner.Send(to, t, buf)
}

// Recv implements Comm.
func (n *Namespace) Recv(from int, tag Tag, buf []byte) (int, error) {
	t, err := n.xlate(tag)
	if err != nil {
		return 0, err
	}
	return n.inner.Recv(from, t, buf)
}

// Isend implements Comm.
func (n *Namespace) Isend(to int, tag Tag, buf []byte) (Request, error) {
	t, err := n.xlate(tag)
	if err != nil {
		return nil, err
	}
	return n.inner.Isend(to, t, buf)
}

// Irecv implements Comm.
func (n *Namespace) Irecv(from int, tag Tag, buf []byte) (Request, error) {
	t, err := n.xlate(tag)
	if err != nil {
		return nil, err
	}
	return n.inner.Irecv(from, t, buf)
}

// SendRecv forwards the one-call exchange when the shared transport
// supports it (the flight recorder's fast path), with the tag translated.
func (n *Namespace) SendRecv(to int, sendBuf []byte, from int, recvBuf []byte, tag Tag) (int, error) {
	t, err := n.xlate(tag)
	if err != nil {
		return 0, err
	}
	return SendRecv(n.inner, to, sendBuf, from, recvBuf, t)
}

// Now forwards Clock when the substrate tracks virtual time.
func (n *Namespace) Now() float64 {
	if cl, ok := n.inner.(Clock); ok {
		return cl.Now()
	}
	return 0
}

// HasClock implements ClockProber.
func (n *Namespace) HasClock() bool {
	_, ok := VirtualClock(n.inner)
	return ok
}

// SetOpTimeout forwards Deadliner. The handle given to NewNamespace should
// carry per-handle deadlines (mem handles and tcp pool handles do): a
// shared-transport-wide deadline would let one tenant's timeout choice
// leak into its cotenants.
func (n *Namespace) SetOpTimeout(d time.Duration) {
	if dl, ok := n.inner.(Deadliner); ok {
		dl.SetOpTimeout(d)
	}
}

// Failed forwards FailureDetector.
func (n *Namespace) Failed() []int {
	if fd, ok := n.inner.(FailureDetector); ok {
		return fd.Failed()
	}
	return nil
}

// Locality forwards Locator.
func (n *Namespace) Locality(rank int) (Locality, bool) {
	return LocalityOf(n.inner, rank)
}

// PurgeTags implements Purger with window translation: the session-layout
// range [lo, hi) is intersected with each layout piece and each
// intersection purged inside the slot's window, splitting folded pieces at
// the wrap point. The fault-tolerance quiesce therefore works identically
// through a namespace, touching only this slot's region of the shared
// transport.
func (n *Namespace) PurgeTags(lo, hi Tag) {
	p, ok := n.inner.(Purger)
	if !ok {
		return
	}
	for _, pc := range nsPieces {
		l, h := lo, hi
		if l < pc.srcLo {
			l = pc.srcLo
		}
		if h > pc.srcHi {
			h = pc.srcHi
		}
		if l >= h {
			continue
		}
		base := n.base + pc.dst
		if pc.mod == 0 {
			p.PurgeTags(base+(l-pc.srcLo), base+(h-pc.srcLo))
			continue
		}
		if h-l >= pc.mod {
			// The range covers the whole folded region.
			p.PurgeTags(base, base+pc.mod)
			continue
		}
		start := (l - pc.srcLo) % pc.mod
		end := start + (h - l)
		if end <= pc.mod {
			p.PurgeTags(base+start, base+end)
		} else {
			// The folded range wraps: purge both arcs.
			p.PurgeTags(base+start, base+pc.mod)
			p.PurgeTags(base, base+(end-pc.mod))
		}
	}
}
