package comm

import (
	"fmt"
	"sort"
	"time"
)

// SubComm presents a subset of a communicator's ranks as a dense
// communicator of its own — the analogue of MPI_Comm_split for the
// hierarchical algorithms (intranode phase + leader phase). Ranks outside
// the subset must not use the SubComm; messages travel through the parent
// communicator, so sub-communicator traffic between the same pair shares
// the parent's per-(source, tag) FIFO ordering.
type SubComm struct {
	inner Comm
	ranks []int // dense index -> parent rank, strictly ascending
	myIdx int
}

// NewSub creates the sub-communicator containing the given parent ranks
// (which must be distinct and include the caller). Every member must call
// NewSub with the same rank list.
func NewSub(c Comm, ranks []int) (*SubComm, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("comm: empty sub-communicator")
	}
	sorted := append([]int(nil), ranks...)
	sort.Ints(sorted)
	myIdx := -1
	for i, r := range sorted {
		if r < 0 || r >= c.Size() {
			return nil, fmt.Errorf("%w: sub rank %d", ErrRankOutOfRange, r)
		}
		if i > 0 && sorted[i-1] == r {
			return nil, fmt.Errorf("comm: duplicate sub rank %d", r)
		}
		if r == c.Rank() {
			myIdx = i
		}
	}
	if myIdx < 0 {
		return nil, fmt.Errorf("comm: caller (rank %d) not in sub-communicator", c.Rank())
	}
	return &SubComm{inner: c, ranks: sorted, myIdx: myIdx}, nil
}

// Parent returns the parent rank of a sub-communicator index.
func (s *SubComm) Parent(idx int) int { return s.ranks[idx] }

// Unwrap reveals the parent communicator (the errors.Unwrap convention
// for wrapper chains), so capability probes that cannot be forwarded
// method-by-method — e.g. the flight recorder's — can walk the stack.
func (s *SubComm) Unwrap() Comm { return s.inner }

// Rank implements Comm.
func (s *SubComm) Rank() int { return s.myIdx }

// Size implements Comm.
func (s *SubComm) Size() int { return len(s.ranks) }

// ChargeCompute implements Comm.
func (s *SubComm) ChargeCompute(n int) { s.inner.ChargeCompute(n) }

func (s *SubComm) translate(idx int) (int, error) {
	if idx < 0 || idx >= len(s.ranks) {
		return 0, fmt.Errorf("%w: sub index %d, size %d", ErrRankOutOfRange, idx, len(s.ranks))
	}
	return s.ranks[idx], nil
}

// Send implements Comm.
func (s *SubComm) Send(to int, tag Tag, buf []byte) error {
	r, err := s.translate(to)
	if err != nil {
		return err
	}
	return s.inner.Send(r, tag, buf)
}

// Recv implements Comm.
func (s *SubComm) Recv(from int, tag Tag, buf []byte) (int, error) {
	r, err := s.translate(from)
	if err != nil {
		return 0, err
	}
	return s.inner.Recv(r, tag, buf)
}

// Isend implements Comm.
func (s *SubComm) Isend(to int, tag Tag, buf []byte) (Request, error) {
	r, err := s.translate(to)
	if err != nil {
		return nil, err
	}
	return s.inner.Isend(r, tag, buf)
}

// Irecv implements Comm.
func (s *SubComm) Irecv(from int, tag Tag, buf []byte) (Request, error) {
	r, err := s.translate(from)
	if err != nil {
		return nil, err
	}
	return s.inner.Irecv(r, tag, buf)
}

// Now implements Clock when the parent tracks virtual time.
func (s *SubComm) Now() float64 {
	if cl, ok := s.inner.(Clock); ok {
		return cl.Now()
	}
	return 0
}

// HasClock implements ClockProber.
func (s *SubComm) HasClock() bool {
	_, ok := VirtualClock(s.inner)
	return ok
}

// SetOpTimeout forwards Deadliner to the parent when it supports per-op
// deadlines (no-op otherwise), so fault-tolerant sessions keep their
// timeout guarantees after a Shrink onto a SubComm.
func (s *SubComm) SetOpTimeout(d time.Duration) {
	if dl, ok := s.inner.(Deadliner); ok {
		dl.SetOpTimeout(d)
	}
}

// Failed forwards FailureDetector to the parent, translating parent ranks
// into sub-communicator indices; parent failures outside the subset are
// dropped (they are no longer members).
func (s *SubComm) Failed() []int {
	fd, ok := s.inner.(FailureDetector)
	if !ok {
		return nil
	}
	var out []int
	for _, parent := range fd.Failed() {
		for idx, r := range s.ranks {
			if r == parent {
				out = append(out, idx)
				break
			}
		}
	}
	return out
}

// Locality forwards Locator to the parent, translating the sub index into
// the parent rank. Node and Ports are physical facts and pass through
// unchanged; LocalRank and PPN remain parent-relative (internal/topo
// recomputes communicator-relative values when it builds a map).
func (s *SubComm) Locality(idx int) (Locality, bool) {
	if idx < 0 || idx >= len(s.ranks) {
		return Locality{}, false
	}
	return LocalityOf(s.inner, s.ranks[idx])
}

// PurgeTags forwards Purger to the parent (no-op otherwise). Tag windows
// are shared with the parent, so the purge range needs no translation.
func (s *SubComm) PurgeTags(lo, hi Tag) {
	if p, ok := s.inner.(Purger); ok {
		p.PurgeTags(lo, hi)
	}
}
