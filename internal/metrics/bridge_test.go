package metrics

import (
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/machine"
	"exacoll/internal/simnet"
	"exacoll/internal/trace"
)

// TestTraceMetricsBridge stacks the metrics wrapper over the trace
// wrapper on the Frontier simulator and proves the two observability
// paths agree: for one Allreduce, the simulator's virtual-clock event log
// and the instrumented counters must report identical per-rank send/recv/
// byte totals.
func TestTraceMetricsBridge(t *testing.T) {
	const p = 8
	const nbytes = 2048
	sim, err := simnet.New(machine.Frontier(), p)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	sink := trace.NewSink()
	alg, err := core.Lookup("allreduce_recmul")
	if err != nil {
		t.Fatal(err)
	}
	err = sim.Run(func(c comm.Comm) error {
		mc := reg.Instrument(sink.Wrap(c))
		return alg.Run(mc, core.Args{
			SendBuf: make([]byte, nbytes),
			RecvBuf: make([]byte, nbytes),
			K:       4,
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if len(snap.Ranks) != p {
		t.Fatalf("metrics saw %d ranks, want %d", len(snap.Ranks), p)
	}
	sums := sink.Summarize()
	if len(sums) != p {
		t.Fatalf("trace saw %d ranks, want %d", len(sums), p)
	}
	for _, ts := range sums {
		ms := snap.Rank(ts.Rank)
		if ms == nil {
			t.Fatalf("rank %d missing from metrics snapshot", ts.Rank)
		}
		if uint64(ts.Sends) != ms.Sends {
			t.Errorf("rank %d: trace sends %d, metrics sends %d", ts.Rank, ts.Sends, ms.Sends)
		}
		if uint64(ts.Recvs) != ms.Recvs {
			t.Errorf("rank %d: trace recvs %d, metrics recvs %d", ts.Rank, ts.Recvs, ms.Recvs)
		}
		if uint64(ts.BytesSent) != ms.SendBytes {
			t.Errorf("rank %d: trace bytes %d, metrics bytes %d", ts.Rank, ts.BytesSent, ms.SendBytes)
		}
		if ms.Sends == 0 || ms.Recvs == 0 {
			t.Errorf("rank %d: expected nonzero traffic, got %+v", ts.Rank, ms)
		}
	}
}
