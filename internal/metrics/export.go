package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON emits the snapshot as indented JSON (the /debug/collectives
// payload). ReadJSON inverts it exactly.
func WriteJSON(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON parses a snapshot written by WriteJSON.
func ReadJSON(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return &s, nil
}

// WritePrometheus emits the snapshot in the Prometheus text exposition
// format (the /metrics payload). Counter families are labeled by rank;
// collective families by {op, alg, k}; histograms use the standard
// cumulative-bucket encoding with log2 `le` bounds in nanoseconds.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)

	counter := func(name, help string) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}

	counter("gca_sends_total", "Messages sent (Send and Isend posts) per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_sends_total{rank=\"%d\"} %d\n", r.Rank, r.Sends)
	}
	counter("gca_recvs_total", "Messages received per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_recvs_total{rank=\"%d\"} %d\n", r.Rank, r.Recvs)
	}
	counter("gca_send_bytes_total", "Bytes sent per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_send_bytes_total{rank=\"%d\"} %d\n", r.Rank, r.SendBytes)
	}
	counter("gca_recv_bytes_total", "Bytes received per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_recv_bytes_total{rank=\"%d\"} %d\n", r.Rank, r.RecvBytes)
	}
	counter("gca_compute_bytes_total", "Reduction-operator bytes (the γ term) per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_compute_bytes_total{rank=\"%d\"} %d\n", r.Rank, r.ComputeBytes)
	}
	counter("gca_send_errors_total", "Failed sends per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_send_errors_total{rank=\"%d\"} %d\n", r.Rank, r.SendErrors)
	}
	counter("gca_recv_errors_total", "Failed receives per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_recv_errors_total{rank=\"%d\"} %d\n", r.Rank, r.RecvErrors)
	}

	fmt.Fprintf(bw, "# HELP gca_recv_wait_ns Time blocked in Recv/Wait per rank, nanoseconds.\n# TYPE gca_recv_wait_ns histogram\n")
	for _, r := range s.Ranks {
		writeHist(bw, "gca_recv_wait_ns", fmt.Sprintf("rank=\"%d\"", r.Rank), r.WaitNs)
	}

	counter("gca_nbc_started_total", "Nonblocking collectives started per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_nbc_started_total{rank=\"%d\"} %d\n", r.Rank, r.NBCStarted)
	}
	fmt.Fprintf(bw, "# HELP gca_nbc_inflight Nonblocking collectives currently in flight per rank.\n# TYPE gca_nbc_inflight gauge\n")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_nbc_inflight{rank=\"%d\"} %d\n", r.Rank, r.NBCInflight)
	}
	fmt.Fprintf(bw, "# HELP gca_nbc_overlap_ns Window between an I<op> call and its first Wait per rank, nanoseconds.\n# TYPE gca_nbc_overlap_ns histogram\n")
	for _, r := range s.Ranks {
		writeHist(bw, "gca_nbc_overlap_ns", fmt.Sprintf("rank=\"%d\"", r.Rank), r.OverlapNs)
	}

	counter("gca_ft_agreements_total", "Post-collective error-agreement rounds per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_ft_agreements_total{rank=\"%d\"} %d\n", r.Rank, r.FTAgreements)
	}
	counter("gca_ft_aborted_total", "Collectives agreed failed world-wide per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_ft_aborted_total{rank=\"%d\"} %d\n", r.Rank, r.FTAborted)
	}
	counter("gca_ft_retries_total", "Transparent idempotent-collective retries per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_ft_retries_total{rank=\"%d\"} %d\n", r.Rank, r.FTRetries)
	}
	counter("gca_ft_failures_detected_total", "Peer process failures detected per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_ft_failures_detected_total{rank=\"%d\"} %d\n", r.Rank, r.FTFailures)
	}
	counter("gca_ft_timeouts_total", "Operations abandoned at their deadline per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_ft_timeouts_total{rank=\"%d\"} %d\n", r.Rank, r.FTTimeouts)
	}

	counter("gca_hier_intra_sends_total", "Hierarchical-collective sends kept intranode per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_hier_intra_sends_total{rank=\"%d\"} %d\n", r.Rank, r.HierIntraSends)
	}
	counter("gca_hier_intra_bytes_total", "Hierarchical-collective bytes kept intranode per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_hier_intra_bytes_total{rank=\"%d\"} %d\n", r.Rank, r.HierIntraBytes)
	}
	counter("gca_hier_inter_sends_total", "Hierarchical-collective sends crossing nodes per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_hier_inter_sends_total{rank=\"%d\"} %d\n", r.Rank, r.HierInterSends)
	}
	counter("gca_hier_inter_bytes_total", "Hierarchical-collective bytes crossing nodes per rank.")
	for _, r := range s.Ranks {
		fmt.Fprintf(bw, "gca_hier_inter_bytes_total{rank=\"%d\"} %d\n", r.Rank, r.HierInterBytes)
	}

	counter("gca_collective_runs_total", "Collective calls by (op, algorithm, radix).")
	for _, c := range s.Collectives {
		fmt.Fprintf(bw, "gca_collective_runs_total{%s} %d\n", collLabels(c), c.Count)
	}
	counter("gca_collective_bytes_total", "Selection-size bytes by (op, algorithm, radix).")
	for _, c := range s.Collectives {
		fmt.Fprintf(bw, "gca_collective_bytes_total{%s} %d\n", collLabels(c), c.Bytes)
	}
	counter("gca_collective_seconds_total", "Time in collective calls by (op, algorithm, radix).")
	for _, c := range s.Collectives {
		fmt.Fprintf(bw, "gca_collective_seconds_total{%s} %g\n", collLabels(c), c.Seconds)
	}
	counter("gca_collective_errors_total", "Failed collective calls by (op, algorithm, radix).")
	for _, c := range s.Collectives {
		fmt.Fprintf(bw, "gca_collective_errors_total{%s} %d\n", collLabels(c), c.Errors)
	}

	fmt.Fprintf(bw, "# HELP gca_collective_latency_ns Per-call collective latency, nanoseconds.\n# TYPE gca_collective_latency_ns histogram\n")
	for _, c := range s.Collectives {
		writeHist(bw, "gca_collective_latency_ns", collLabels(c), c.LatencyNs)
	}

	counter("gca_decisions_total", "Selection decisions recorded.")
	fmt.Fprintf(bw, "gca_decisions_total %d\n", s.DecisionsTotal)

	return bw.Flush()
}

// collLabels renders the {op, alg, k} label set of one collective family.
func collLabels(c CollectiveSnapshot) string {
	return fmt.Sprintf("op=%q,alg=%q,k=\"%d\"", c.Op, c.Alg, c.K)
}

// writeHist emits one histogram series with cumulative buckets. Buckets
// past the last non-zero one are collapsed into +Inf to bound the output.
func writeHist(w io.Writer, name, labels string, h HistogramSnapshot) {
	last := -1
	for i, c := range h.Counts {
		if c > 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%d\"} %d\n", name, labels, BucketUpper(i), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, h.Count())
	fmt.Fprintf(w, "%s_sum{%s} %d\n", name, labels, h.Sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count())
}
