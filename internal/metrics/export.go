package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON emits the snapshot as indented JSON (the /debug/collectives
// payload). ReadJSON inverts it exactly.
func WriteJSON(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON parses a snapshot written by WriteJSON.
func ReadJSON(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return &s, nil
}

// TenantSnapshot pairs one tenant's registry snapshot with its identity —
// the session id and QoS class the service layer stamps on every exported
// series.
type TenantSnapshot struct {
	Tenant   string    `json:"tenant"`
	QoS      string    `json:"qos,omitempty"`
	Snapshot *Snapshot `json:"snapshot"`
}

// WriteJSONTenants emits every tenant's snapshot under its identity as one
// JSON document ({"tenants": [...]}). ReadJSONTenants inverts it.
func WriteJSONTenants(w io.Writer, tenants []TenantSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Tenants []TenantSnapshot `json:"tenants"`
	}{Tenants: tenants})
}

// ReadJSONTenants parses a document written by WriteJSONTenants.
func ReadJSONTenants(r io.Reader) ([]TenantSnapshot, error) {
	var doc struct {
		Tenants []TenantSnapshot `json:"tenants"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return doc.Tenants, nil
}

// WritePrometheus emits the snapshot in the Prometheus text exposition
// format (the /metrics payload). Counter families are labeled by rank;
// collective families by {op, alg, k}; histograms use the standard
// cumulative-bucket encoding with log2 `le` bounds in nanoseconds.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	return writePrometheus(w, []labeledSnap{{snap: s}})
}

// WritePrometheusTenants is WritePrometheus over many tenants in one valid
// exposition: each metric family appears exactly once, with every tenant's
// series carrying {tenant, qos} labels ahead of the family's own.
func WritePrometheusTenants(w io.Writer, tenants []TenantSnapshot) error {
	snaps := make([]labeledSnap, 0, len(tenants))
	for _, tn := range tenants {
		if tn.Snapshot == nil {
			continue
		}
		snaps = append(snaps, labeledSnap{
			prefix: fmt.Sprintf("tenant=%q,qos=%q,", tn.Tenant, tn.QoS),
			snap:   tn.Snapshot,
		})
	}
	return writePrometheus(w, snaps)
}

// labeledSnap is one snapshot plus the label prefix ("" or
// `tenant="…",qos="…",`) prepended to every series' label set.
type labeledSnap struct {
	prefix string
	snap   *Snapshot
}

// writePrometheus renders the exposition family-major: one HELP/TYPE
// header per family, then every snapshot's series under it — the iteration
// order the text format requires (a family split across the output is
// invalid).
func writePrometheus(w io.Writer, snaps []labeledSnap) error {
	bw := bufio.NewWriter(w)

	counter := func(name, help string) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	perRank := func(name, help, typ string, val func(*RankSnapshot) string) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, ls := range snaps {
			for i := range ls.snap.Ranks {
				r := &ls.snap.Ranks[i]
				fmt.Fprintf(bw, "%s{%srank=\"%d\"} %s\n", name, ls.prefix, r.Rank, val(r))
			}
		}
	}
	rankCounter := func(name, help string, val func(*RankSnapshot) uint64) {
		perRank(name, help, "counter", func(r *RankSnapshot) string {
			return fmt.Sprintf("%d", val(r))
		})
	}
	rankHist := func(name, help string, h func(*RankSnapshot) HistogramSnapshot) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		for _, ls := range snaps {
			for i := range ls.snap.Ranks {
				r := &ls.snap.Ranks[i]
				writeHist(bw, name, fmt.Sprintf("%srank=\"%d\"", ls.prefix, r.Rank), h(r))
			}
		}
	}
	collCounter := func(name, help string, val func(*CollectiveSnapshot) string) {
		counter(name, help)
		for _, ls := range snaps {
			for i := range ls.snap.Collectives {
				c := &ls.snap.Collectives[i]
				fmt.Fprintf(bw, "%s{%s%s} %s\n", name, ls.prefix, collLabels(*c), val(c))
			}
		}
	}

	rankCounter("gca_sends_total", "Messages sent (Send and Isend posts) per rank.",
		func(r *RankSnapshot) uint64 { return r.Sends })
	rankCounter("gca_recvs_total", "Messages received per rank.",
		func(r *RankSnapshot) uint64 { return r.Recvs })
	rankCounter("gca_send_bytes_total", "Bytes sent per rank.",
		func(r *RankSnapshot) uint64 { return r.SendBytes })
	rankCounter("gca_recv_bytes_total", "Bytes received per rank.",
		func(r *RankSnapshot) uint64 { return r.RecvBytes })
	rankCounter("gca_compute_bytes_total", "Reduction-operator bytes (the γ term) per rank.",
		func(r *RankSnapshot) uint64 { return r.ComputeBytes })
	rankCounter("gca_send_errors_total", "Failed sends per rank.",
		func(r *RankSnapshot) uint64 { return r.SendErrors })
	rankCounter("gca_recv_errors_total", "Failed receives per rank.",
		func(r *RankSnapshot) uint64 { return r.RecvErrors })

	rankHist("gca_recv_wait_ns", "Time blocked in Recv/Wait per rank, nanoseconds.",
		func(r *RankSnapshot) HistogramSnapshot { return r.WaitNs })

	rankCounter("gca_nbc_started_total", "Nonblocking collectives started per rank.",
		func(r *RankSnapshot) uint64 { return r.NBCStarted })
	perRank("gca_nbc_inflight", "Nonblocking collectives currently in flight per rank.", "gauge",
		func(r *RankSnapshot) string { return fmt.Sprintf("%d", r.NBCInflight) })
	rankHist("gca_nbc_overlap_ns", "Window between an I<op> call and its first Wait per rank, nanoseconds.",
		func(r *RankSnapshot) HistogramSnapshot { return r.OverlapNs })

	rankCounter("gca_ft_agreements_total", "Post-collective error-agreement rounds per rank.",
		func(r *RankSnapshot) uint64 { return r.FTAgreements })
	rankCounter("gca_ft_aborted_total", "Collectives agreed failed world-wide per rank.",
		func(r *RankSnapshot) uint64 { return r.FTAborted })
	rankCounter("gca_ft_retries_total", "Transparent idempotent-collective retries per rank.",
		func(r *RankSnapshot) uint64 { return r.FTRetries })
	rankCounter("gca_ft_failures_detected_total", "Peer process failures detected per rank.",
		func(r *RankSnapshot) uint64 { return r.FTFailures })
	rankCounter("gca_ft_timeouts_total", "Operations abandoned at their deadline per rank.",
		func(r *RankSnapshot) uint64 { return r.FTTimeouts })

	rankCounter("gca_hier_intra_sends_total", "Hierarchical-collective sends kept intranode per rank.",
		func(r *RankSnapshot) uint64 { return r.HierIntraSends })
	rankCounter("gca_hier_intra_bytes_total", "Hierarchical-collective bytes kept intranode per rank.",
		func(r *RankSnapshot) uint64 { return r.HierIntraBytes })
	rankCounter("gca_hier_inter_sends_total", "Hierarchical-collective sends crossing nodes per rank.",
		func(r *RankSnapshot) uint64 { return r.HierInterSends })
	rankCounter("gca_hier_inter_bytes_total", "Hierarchical-collective bytes crossing nodes per rank.",
		func(r *RankSnapshot) uint64 { return r.HierInterBytes })

	collCounter("gca_collective_runs_total", "Collective calls by (op, algorithm, radix).",
		func(c *CollectiveSnapshot) string { return fmt.Sprintf("%d", c.Count) })
	collCounter("gca_collective_bytes_total", "Selection-size bytes by (op, algorithm, radix).",
		func(c *CollectiveSnapshot) string { return fmt.Sprintf("%d", c.Bytes) })
	collCounter("gca_collective_seconds_total", "Time in collective calls by (op, algorithm, radix).",
		func(c *CollectiveSnapshot) string { return fmt.Sprintf("%g", c.Seconds) })
	collCounter("gca_collective_errors_total", "Failed collective calls by (op, algorithm, radix).",
		func(c *CollectiveSnapshot) string { return fmt.Sprintf("%d", c.Errors) })

	fmt.Fprintf(bw, "# HELP gca_collective_latency_ns Per-call collective latency, nanoseconds.\n# TYPE gca_collective_latency_ns histogram\n")
	for _, ls := range snaps {
		for i := range ls.snap.Collectives {
			c := &ls.snap.Collectives[i]
			writeHist(bw, "gca_collective_latency_ns", ls.prefix+collLabels(*c), c.LatencyNs)
		}
	}

	counter("gca_decisions_total", "Selection decisions recorded.")
	for _, ls := range snaps {
		if ls.prefix == "" {
			fmt.Fprintf(bw, "gca_decisions_total %d\n", ls.snap.DecisionsTotal)
		} else {
			fmt.Fprintf(bw, "gca_decisions_total{%s} %d\n",
				ls.prefix[:len(ls.prefix)-1], ls.snap.DecisionsTotal)
		}
	}

	return bw.Flush()
}

// collLabels renders the {op, alg, k} label set of one collective family.
func collLabels(c CollectiveSnapshot) string {
	return fmt.Sprintf("op=%q,alg=%q,k=\"%d\"", c.Op, c.Alg, c.K)
}

// writeHist emits one histogram series with cumulative buckets. Buckets
// past the last non-zero one are collapsed into +Inf to bound the output.
func writeHist(w io.Writer, name, labels string, h HistogramSnapshot) {
	last := -1
	for i, c := range h.Counts {
		if c > 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%d\"} %d\n", name, labels, BucketUpper(i), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, h.Count())
	fmt.Fprintf(w, "%s_sum{%s} %d\n", name, labels, h.Sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count())
}
