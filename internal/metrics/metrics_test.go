package metrics

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/machine"
	"exacoll/internal/simnet"
	"exacoll/internal/transport/mem"
)

// TestHistogramBuckets pins the log2 bucket scheme: bucket 0 holds the
// value 0, bucket i holds [2^(i-1), 2^i - 1], and the final bucket is
// unbounded.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{1023, 10}, {1024, 11},
		{math.MaxUint64, NumBuckets - 1},
	}
	var sum uint64
	for _, c := range cases {
		h.Observe(c.v)
		sum += c.v
	}
	s := h.snapshot()
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 10: 1, 11: 1, NumBuckets - 1: 1}
	for i, n := range s.Counts {
		if n != want[i] {
			t.Errorf("bucket %d: count %d, want %d", i, n, want[i])
		}
	}
	if s.Sum != sum {
		t.Errorf("sum %d, want %d", s.Sum, sum)
	}
	if got := s.Count(); got != uint64(len(cases)) {
		t.Errorf("count %d, want %d", got, len(cases))
	}

	// Bounds: bucket i's inclusive upper bound is 2^i - 1; every observed
	// value must satisfy lower <= v <= upper for its bucket.
	if BucketUpper(0) != 0 {
		t.Errorf("BucketUpper(0) = %d, want 0", BucketUpper(0))
	}
	if BucketUpper(10) != 1023 {
		t.Errorf("BucketUpper(10) = %d, want 1023", BucketUpper(10))
	}
	if BucketUpper(NumBuckets-1) != math.MaxUint64 {
		t.Errorf("final bucket must be unbounded")
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines —
// counters via instrumented communicators, decisions directly — and
// checks totals. Run with -race in CI.
func TestConcurrentUpdates(t *testing.T) {
	const p = 8
	const msgs = 50
	const nbytes = 64
	reg := NewRegistry()
	w := mem.NewWorld(p)
	defer w.Close()

	err := w.Run(func(c comm.Comm) error {
		mc := reg.Instrument(c)
		// Every rank sends `msgs` messages to every other rank and
		// receives the same, half blocking and half nonblocking.
		for i := 0; i < msgs; i++ {
			tag := comm.TagUser + comm.Tag(i)
			for peer := 0; peer < p; peer++ {
				if peer == mc.Rank() {
					continue
				}
				if err := mc.Send(peer, tag, make([]byte, nbytes)); err != nil {
					return err
				}
			}
			buf := make([]byte, nbytes)
			for peer := 0; peer < p; peer++ {
				if peer == mc.Rank() {
					continue
				}
				if i%2 == 0 {
					if _, err := mc.Recv(peer, tag, buf); err != nil {
						return err
					}
				} else {
					req, err := mc.Irecv(peer, tag, buf)
					if err != nil {
						return err
					}
					if err := req.Wait(); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				reg.RecordDecision(Decision{Rank: r, Op: "MPI_Allreduce", Alg: "allreduce_recmul", K: 4, Bytes: nbytes})
			}
		}(r)
	}
	wg.Wait()

	s := reg.Snapshot()
	wantMsgs := uint64(p * (p - 1) * msgs)
	tot := s.Totals()
	if tot.Sends != wantMsgs || tot.Recvs != wantMsgs {
		t.Errorf("sends=%d recvs=%d, want %d each", tot.Sends, tot.Recvs, wantMsgs)
	}
	if tot.SendBytes != wantMsgs*nbytes || tot.RecvBytes != wantMsgs*nbytes {
		t.Errorf("send_bytes=%d recv_bytes=%d, want %d each", tot.SendBytes, tot.RecvBytes, wantMsgs*nbytes)
	}
	if s.DecisionsTotal != p*msgs {
		t.Errorf("decisions_total=%d, want %d", s.DecisionsTotal, p*msgs)
	}
	if len(s.Collectives) != 1 || s.Collectives[0].Count != p*msgs {
		t.Errorf("collective aggregate %+v, want one entry with count %d", s.Collectives, p*msgs)
	}
	for _, r := range s.Ranks {
		if got := r.WaitNs.Count(); got != uint64((p-1)*msgs) {
			t.Errorf("rank %d wait histogram count %d, want %d", r.Rank, got, (p-1)*msgs)
		}
	}
}

// simAllreduce runs one instrumented Allreduce on a fresh Frontier
// simulation and returns the snapshot.
func simAllreduce(t *testing.T, p, nbytes int) *Snapshot {
	t.Helper()
	sim, err := simnet.New(machine.Frontier(), p)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	err = sim.Run(func(c comm.Comm) error {
		mc := reg.Instrument(c)
		if _, ok := mc.(comm.Clock); !ok {
			return fmt.Errorf("instrumented simnet comm lost the Clock interface")
		}
		a := core.Args{
			SendBuf: make([]byte, nbytes),
			RecvBuf: make([]byte, nbytes),
			K:       4,
		}
		alg, err := core.Lookup("allreduce_recmul")
		if err != nil {
			return err
		}
		return alg.Run(mc, a)
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg.Snapshot()
}

// TestSnapshotDeterministicOnSimnet runs the identical simulation twice:
// because the instrumented wrapper measures waits with the virtual clock,
// the two snapshots must be byte-for-byte identical (same seed → same
// byte and round counts, same histograms).
func TestSnapshotDeterministicOnSimnet(t *testing.T) {
	a := simAllreduce(t, 8, 4096)
	b := simAllreduce(t, 8, 4096)
	var ab, bb bytes.Buffer
	if err := WriteJSON(&ab, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatalf("snapshots differ across identical simulations:\n--- run 1:\n%s\n--- run 2:\n%s", ab.String(), bb.String())
	}
	tot := a.Totals()
	if tot.Sends == 0 || tot.RecvBytes == 0 {
		t.Fatalf("expected nonzero traffic, got %+v", tot)
	}
}
