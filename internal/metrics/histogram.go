package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket i holds
// values whose bit length is i — i.e. bucket 0 holds the value 0 and
// bucket i (i >= 1) holds [2^(i-1), 2^i - 1]. With 40 buckets the top
// finite bound is 2^38 - 1 nanoseconds (~4.6 minutes); anything larger
// lands in the overflow bucket.
const NumBuckets = 40

// Histogram is a fixed-size, log2-bucketed histogram safe for concurrent
// use. Observe is allocation-free: one atomic add for the bucket and one
// for the running sum, making it suitable for per-message hot paths.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Uint64
}

// Observe records one value (typically nanoseconds).
func (h *Histogram) Observe(v uint64) {
	i := bits.Len64(v)
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// snapshot copies the histogram into its plain, serializable form.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Counts: make([]uint64, NumBuckets)}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	return s
}

// BucketUpper returns the inclusive upper bound of bucket i. The final
// bucket is unbounded (MaxUint64).
func BucketUpper(i int) uint64 {
	if i >= NumBuckets-1 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// HistogramSnapshot is the plain copy of a Histogram (always NumBuckets
// counts, so snapshots compare and round-trip deterministically).
type HistogramSnapshot struct {
	// Counts[i] is the number of observations in bucket i (see NumBuckets
	// for the bucket scheme).
	Counts []uint64 `json:"counts"`
	// Sum is the total of all observed values.
	Sum uint64 `json:"sum"`
}

// Count returns the total number of observations.
func (s HistogramSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}
