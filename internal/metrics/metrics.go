// Package metrics is the runtime observability subsystem: per-rank,
// per-collective telemetry for any comm.Comm substrate (mem, tcp, simnet,
// faulty), recorded with near-zero overhead and exported as Prometheus
// text or JSON.
//
// The paper's argument rests on measuring collectives — its (α, β, γ)
// models only mean something because every send, receive, and round is
// accounted for. This package brings that accounting to the real
// transports, not just the simulator:
//
//   - Registry.Instrument wraps a communicator and counts every
//     send/recv/byte/compute-byte with atomic counters and log-bucketed
//     wait-time histograms (allocation-free on the blocking hot path);
//   - tuning.Table.Run records a Decision for every collective call — op,
//     selection size, chosen algorithm and radix, duration — so the
//     selection path stops being a black box;
//   - Snapshot produces a deterministic, serializable copy that
//     WritePrometheus and WriteJSON export.
//
// On substrates that implement comm.Clock (the simulator), durations are
// measured in virtual time, so snapshots are bit-for-bit reproducible for
// a given seed; on real transports they are wall-clock.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// recentDecisions bounds the ring buffer of recent Decision records kept
// verbatim (aggregates are unbounded and never dropped).
const recentDecisions = 256

// rankCounters is one rank's hot-path state. All fields are atomics so
// Instrumented communicators never take a lock per message.
type rankCounters struct {
	sends        atomic.Uint64
	recvs        atomic.Uint64
	sendBytes    atomic.Uint64
	recvBytes    atomic.Uint64
	computeBytes atomic.Uint64
	sendErrors   atomic.Uint64
	recvErrors   atomic.Uint64
	wait         Histogram // nanoseconds blocked in Recv / Request.Wait

	nbcStarted  atomic.Uint64
	nbcInflight atomic.Int64
	overlap     Histogram // nanoseconds between I<op> start and first Wait

	// Fault-tolerance counters (the gca FT layer feeds these).
	ftAgreements atomic.Uint64 // error-agreement rounds run after collectives
	ftAborted    atomic.Uint64 // collectives agreed failed world-wide
	ftRetries    atomic.Uint64 // transparent re-runs of idempotent collectives
	ftFailures   atomic.Uint64 // peer deaths first observed by this rank
	ftTimeouts   atomic.Uint64 // operations abandoned at their deadline

	// Hierarchical-collective counters (internal/topo feeds these): sends
	// and bytes split by level — intranode (node phases plus root<->leader
	// hops) versus internode (leader phases).
	hierIntraSends atomic.Uint64
	hierIntraBytes atomic.Uint64
	hierInterSends atomic.Uint64
	hierInterBytes atomic.Uint64
}

// opKey aggregates decisions by what actually ran.
type opKey struct {
	op  string
	alg string
	k   int
}

// opAgg accumulates per-(op, alg, k) totals. Guarded by Registry.mu —
// decisions are per collective call, not per message, so a lock is fine.
type opAgg struct {
	count   uint64
	errors  uint64
	bytes   uint64
	seconds float64
	lat     Histogram // nanoseconds per collective call
}

// Decision is one selection-decision record: what tuning.Table.Run chose
// for one collective call on one rank, and what it cost. Bytes is the
// per-op selection size (core.SelectionSize), identical on every rank of
// the same collective.
type Decision struct {
	Rank  int    `json:"rank"`
	Op    string `json:"op"`
	Bytes int    `json:"bytes"`
	Alg   string `json:"alg"`
	K     int    `json:"k,omitempty"`
	// Start is the call's start time in seconds: virtual time on clocked
	// substrates, seconds since the registry's creation otherwise.
	Start   float64 `json:"start_s"`
	Seconds float64 `json:"seconds"`
	Err     bool    `json:"err,omitempty"`
}

// SpanSink receives one span per recorded decision. trace.Sink implements
// it, so decision spans feed the existing Chrome-trace renderer.
type SpanSink interface {
	RecordSpan(rank int, label string, start, dur float64)
}

// Registry collects telemetry for one world: per-rank counters plus
// selection-decision records. One Registry is shared by all ranks (pass
// it to every rank's Session / Instrument call).
type Registry struct {
	epoch time.Time

	mu     sync.Mutex
	ranks  map[int]*rankCounters
	ops    map[opKey]*opAgg
	recent []Decision // ring buffer, chronological once unrolled
	next   int        // next write position in recent
	total  uint64     // decisions ever recorded
	spans  SpanSink
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		epoch: time.Now(),
		ranks: map[int]*rankCounters{},
		ops:   map[opKey]*opAgg{},
	}
}

// Elapsed returns seconds since the registry was created — the wall-clock
// time base for Decision.Start on substrates without a virtual clock.
func (r *Registry) Elapsed() float64 { return time.Since(r.epoch).Seconds() }

// SetSpanSink forwards every future decision as a span (e.g. to a
// trace.Sink for Chrome-trace rendering). Pass nil to detach.
func (r *Registry) SetSpanSink(s SpanSink) {
	r.mu.Lock()
	r.spans = s
	r.mu.Unlock()
}

// rank returns (creating on first use) rank's counter block.
func (r *Registry) rank(rank int) *rankCounters {
	r.mu.Lock()
	defer r.mu.Unlock()
	rc, ok := r.ranks[rank]
	if !ok {
		rc = &rankCounters{}
		r.ranks[rank] = rc
	}
	return rc
}

// NBCStart counts a nonblocking collective starting on rank and raises the
// rank's in-flight gauge.
func (r *Registry) NBCStart(rank int) {
	rc := r.rank(rank)
	rc.nbcStarted.Add(1)
	rc.nbcInflight.Add(1)
}

// NBCFinish lowers rank's in-flight nonblocking-collective gauge.
func (r *Registry) NBCFinish(rank int) {
	r.rank(rank).nbcInflight.Add(-1)
}

// ObserveOverlap records the overlap window of one nonblocking collective
// on rank: nanoseconds between the I<op> call and the first Wait — the
// time the caller had available to compute while communication progressed.
func (r *Registry) ObserveOverlap(rank int, ns uint64) {
	r.rank(rank).overlap.Observe(ns)
}

// FTAgreement counts one post-collective error-agreement round on rank,
// recording whether the world agreed the collective failed.
func (r *Registry) FTAgreement(rank int, aborted bool) {
	rc := r.rank(rank)
	rc.ftAgreements.Add(1)
	if aborted {
		rc.ftAborted.Add(1)
	}
}

// FTRetry counts one transparent retry of an idempotent collective on rank.
func (r *Registry) FTRetry(rank int) { r.rank(rank).ftRetries.Add(1) }

// FTFailuresDetected counts n peer deaths newly observed by rank.
func (r *Registry) FTFailuresDetected(rank, n int) {
	if n > 0 {
		r.rank(rank).ftFailures.Add(uint64(n))
	}
}

// FTTimeout counts one operation abandoned at its deadline on rank.
func (r *Registry) FTTimeout(rank int) { r.rank(rank).ftTimeouts.Add(1) }

// HierSend attributes one hierarchical-collective send on rank to its
// level: intra (node phase or root<->leader hop) or inter (leader phase).
// The topology engine calls this in addition to the base send counters,
// so intra+inter bytes here measure how much of the instrumented traffic
// the hierarchy kept on fast links.
func (r *Registry) HierSend(rank int, intra bool, nbytes int) {
	rc := r.rank(rank)
	if intra {
		rc.hierIntraSends.Add(1)
		rc.hierIntraBytes.Add(uint64(nbytes))
	} else {
		rc.hierInterSends.Add(1)
		rc.hierInterBytes.Add(uint64(nbytes))
	}
}

// Instrumented is implemented by communicators wrapped by
// Registry.Instrument; tuning.Table.Run uses it to discover where to
// record selection decisions. Instrument the communicator outermost (wrap
// trace inside, not outside) so the assertion sees it.
type Instrumented interface {
	Metrics() *Registry
}

// RecordDecision records one selection decision: the verbatim record goes
// into the recent-decisions ring, the (op, alg, k) aggregate and its
// latency histogram are updated, and the span sink (if any) is fed.
func (r *Registry) RecordDecision(d Decision) {
	r.mu.Lock()
	r.total++
	if len(r.recent) < recentDecisions {
		r.recent = append(r.recent, d)
	} else {
		r.recent[r.next] = d
	}
	r.next = (r.next + 1) % recentDecisions
	key := opKey{op: d.Op, alg: d.Alg, k: d.K}
	agg, ok := r.ops[key]
	if !ok {
		agg = &opAgg{}
		r.ops[key] = agg
	}
	agg.count++
	if d.Err {
		agg.errors++
	}
	agg.bytes += uint64(d.Bytes)
	agg.seconds += d.Seconds
	agg.lat.Observe(uint64(d.Seconds * 1e9))
	spans := r.spans
	r.mu.Unlock()

	if spans != nil {
		label := d.Op + " " + d.Alg
		spans.RecordSpan(d.Rank, label, d.Start, d.Seconds)
	}
}

// RankSnapshot is one rank's counter totals at snapshot time.
type RankSnapshot struct {
	Rank         int               `json:"rank"`
	Sends        uint64            `json:"sends"`
	Recvs        uint64            `json:"recvs"`
	SendBytes    uint64            `json:"send_bytes"`
	RecvBytes    uint64            `json:"recv_bytes"`
	ComputeBytes uint64            `json:"compute_bytes"`
	SendErrors   uint64            `json:"send_errors,omitempty"`
	RecvErrors   uint64            `json:"recv_errors,omitempty"`
	WaitNs       HistogramSnapshot `json:"wait_ns"`
	// NBCStarted counts nonblocking collectives started on this rank;
	// NBCInflight is the in-flight gauge at snapshot time; OverlapNs is the
	// histogram of I<op>-to-first-Wait windows.
	NBCStarted  uint64            `json:"nbc_started,omitempty"`
	NBCInflight int64             `json:"nbc_inflight,omitempty"`
	OverlapNs   HistogramSnapshot `json:"nbc_overlap_ns"`
	// Fault-tolerance totals: agreement rounds run, collectives agreed
	// failed, transparent retries, peer failures detected, deadline hits.
	FTAgreements uint64 `json:"ft_agreements,omitempty"`
	FTAborted    uint64 `json:"ft_aborted,omitempty"`
	FTRetries    uint64 `json:"ft_retries,omitempty"`
	FTFailures   uint64 `json:"ft_failures_detected,omitempty"`
	FTTimeouts   uint64 `json:"ft_timeouts,omitempty"`
	// Hierarchical-collective totals, split by level.
	HierIntraSends uint64 `json:"hier_intra_sends,omitempty"`
	HierIntraBytes uint64 `json:"hier_intra_bytes,omitempty"`
	HierInterSends uint64 `json:"hier_inter_sends,omitempty"`
	HierInterBytes uint64 `json:"hier_inter_bytes,omitempty"`
}

// CollectiveSnapshot is one (op, alg, k) aggregate at snapshot time.
type CollectiveSnapshot struct {
	Op        string            `json:"op"`
	Alg       string            `json:"alg"`
	K         int               `json:"k,omitempty"`
	Count     uint64            `json:"count"`
	Errors    uint64            `json:"errors,omitempty"`
	Bytes     uint64            `json:"bytes"`
	Seconds   float64           `json:"seconds"`
	LatencyNs HistogramSnapshot `json:"latency_ns"`
}

// Snapshot is a deterministic copy of a Registry: ranks sorted by rank,
// collectives sorted by (op, alg, k), recent decisions in record order.
type Snapshot struct {
	Ranks          []RankSnapshot       `json:"ranks"`
	Collectives    []CollectiveSnapshot `json:"collectives"`
	DecisionsTotal uint64               `json:"decisions_total"`
	Decisions      []Decision           `json:"recent_decisions"`
}

// Snapshot copies the registry. Concurrent recording may continue; the
// copy is internally consistent per counter but not a global atomic cut.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{DecisionsTotal: r.total}

	for rank, rc := range r.ranks {
		s.Ranks = append(s.Ranks, RankSnapshot{
			Rank:         rank,
			Sends:        rc.sends.Load(),
			Recvs:        rc.recvs.Load(),
			SendBytes:    rc.sendBytes.Load(),
			RecvBytes:    rc.recvBytes.Load(),
			ComputeBytes: rc.computeBytes.Load(),
			SendErrors:   rc.sendErrors.Load(),
			RecvErrors:   rc.recvErrors.Load(),
			WaitNs:       rc.wait.snapshot(),
			NBCStarted:   rc.nbcStarted.Load(),
			NBCInflight:  rc.nbcInflight.Load(),
			OverlapNs:    rc.overlap.snapshot(),
			FTAgreements: rc.ftAgreements.Load(),
			FTAborted:    rc.ftAborted.Load(),
			FTRetries:    rc.ftRetries.Load(),
			FTFailures:   rc.ftFailures.Load(),
			FTTimeouts:   rc.ftTimeouts.Load(),
			HierIntraSends: rc.hierIntraSends.Load(),
			HierIntraBytes: rc.hierIntraBytes.Load(),
			HierInterSends: rc.hierInterSends.Load(),
			HierInterBytes: rc.hierInterBytes.Load(),
		})
	}
	sort.Slice(s.Ranks, func(i, j int) bool { return s.Ranks[i].Rank < s.Ranks[j].Rank })

	for key, agg := range r.ops {
		s.Collectives = append(s.Collectives, CollectiveSnapshot{
			Op: key.op, Alg: key.alg, K: key.k,
			Count: agg.count, Errors: agg.errors,
			Bytes: agg.bytes, Seconds: agg.seconds,
			LatencyNs: agg.lat.snapshot(),
		})
	}
	sort.Slice(s.Collectives, func(i, j int) bool {
		a, b := s.Collectives[i], s.Collectives[j]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Alg != b.Alg {
			return a.Alg < b.Alg
		}
		return a.K < b.K
	})

	// Unroll the ring into chronological order.
	if len(r.recent) < recentDecisions {
		s.Decisions = append(s.Decisions, r.recent...)
	} else {
		s.Decisions = append(s.Decisions, r.recent[r.next:]...)
		s.Decisions = append(s.Decisions, r.recent[:r.next]...)
	}
	return s
}

// Rank returns the snapshot entry for one rank (nil if absent).
func (s *Snapshot) Rank(rank int) *RankSnapshot {
	for i := range s.Ranks {
		if s.Ranks[i].Rank == rank {
			return &s.Ranks[i]
		}
	}
	return nil
}

// Totals sums counters across all ranks.
func (s *Snapshot) Totals() RankSnapshot {
	t := RankSnapshot{Rank: -1}
	for _, r := range s.Ranks {
		t.Sends += r.Sends
		t.Recvs += r.Recvs
		t.SendBytes += r.SendBytes
		t.RecvBytes += r.RecvBytes
		t.ComputeBytes += r.ComputeBytes
		t.SendErrors += r.SendErrors
		t.RecvErrors += r.RecvErrors
		t.NBCStarted += r.NBCStarted
		t.NBCInflight += r.NBCInflight
		t.FTAgreements += r.FTAgreements
		t.FTAborted += r.FTAborted
		t.FTRetries += r.FTRetries
		t.FTFailures += r.FTFailures
		t.FTTimeouts += r.FTTimeouts
		t.HierIntraSends += r.HierIntraSends
		t.HierIntraBytes += r.HierIntraBytes
		t.HierInterSends += r.HierInterSends
		t.HierInterBytes += r.HierInterBytes
	}
	return t
}
