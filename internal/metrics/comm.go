package metrics

import (
	"sync"
	"time"

	"exacoll/internal/comm"
)

// Instrument wraps c so every operation updates the registry's counters
// for c's rank. The wrapper preserves the comm.Clock interface when the
// substrate tracks virtual time, and measures wait durations with that
// clock when available (making simulator snapshots deterministic).
//
// Overhead: the blocking Send/Recv paths add only atomic adds and one
// time read — no allocations. Irecv allocates one small request wrapper
// (matching what the substrate itself allocates per posted receive).
func (r *Registry) Instrument(c comm.Comm) comm.Comm {
	mc := &Comm{inner: c, reg: r, rc: r.rank(c.Rank())}
	if clk, ok := comm.VirtualClock(c); ok {
		mc.clk = clk
		return &clockComm{mc}
	}
	return mc
}

// InstrumentedOf returns the registry reachable from c: c's own when it
// implements Instrumented, or the nearest instrumented communicator's
// found by walking Unwrap() wrapper chains (the errors.Unwrap
// convention) — so instrumentation stays discoverable under outer
// wrappers like the flight recorder's. Nil when no registry is attached.
func InstrumentedOf(c comm.Comm) *Registry {
	for c != nil {
		if ic, ok := c.(Instrumented); ok {
			return ic.Metrics()
		}
		u, ok := c.(interface{ Unwrap() comm.Comm })
		if !ok {
			return nil
		}
		c = u.Unwrap()
	}
	return nil
}

// Comm is an instrumented communicator. It implements comm.Comm and
// Instrumented; use Registry.Instrument to construct it.
type Comm struct {
	inner comm.Comm
	clk   comm.Clock // non-nil iff the substrate tracks virtual time
	reg   *Registry
	rc    *rankCounters
}

// Metrics implements Instrumented.
func (m *Comm) Metrics() *Registry { return m.reg }

// Unwrap reveals the wrapped communicator (the errors.Unwrap convention),
// letting capability probes like the flight recorder's walk the chain.
func (m *Comm) Unwrap() comm.Comm { return m.inner }

// Rank implements comm.Comm.
func (m *Comm) Rank() int { return m.inner.Rank() }

// Size implements comm.Comm.
func (m *Comm) Size() int { return m.inner.Size() }

// Locality forwards comm.Locator to the substrate (instrumentation does
// not change where ranks live), reporting false when it cannot answer.
func (m *Comm) Locality(rank int) (comm.Locality, bool) {
	return comm.LocalityOf(m.inner, rank)
}

// ChargeCompute implements comm.Comm, counting the γ-term bytes.
func (m *Comm) ChargeCompute(n int) {
	m.inner.ChargeCompute(n)
	m.rc.computeBytes.Add(uint64(n))
}

// waitStart captures the wait-time origin: virtual seconds on clocked
// substrates, a wall-clock instant otherwise.
func (m *Comm) waitStart() (float64, time.Time) {
	if m.clk != nil {
		return m.clk.Now(), time.Time{}
	}
	return 0, time.Now()
}

// waitNanos converts a waitStart origin into elapsed nanoseconds.
func (m *Comm) waitNanos(v0 float64, t0 time.Time) uint64 {
	if m.clk != nil {
		d := m.clk.Now() - v0
		if d < 0 {
			d = 0
		}
		return uint64(d * 1e9)
	}
	return uint64(time.Since(t0))
}

// Send implements comm.Comm.
func (m *Comm) Send(to int, tag comm.Tag, buf []byte) error {
	if err := m.inner.Send(to, tag, buf); err != nil {
		m.rc.sendErrors.Add(1)
		return err
	}
	m.rc.sends.Add(1)
	m.rc.sendBytes.Add(uint64(len(buf)))
	return nil
}

// Recv implements comm.Comm; the full blocking duration is recorded in
// the rank's wait histogram.
func (m *Comm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	v0, t0 := m.waitStart()
	n, err := m.inner.Recv(from, tag, buf)
	if err != nil {
		m.rc.recvErrors.Add(1)
		return n, err
	}
	m.rc.wait.Observe(m.waitNanos(v0, t0))
	m.rc.recvs.Add(1)
	m.rc.recvBytes.Add(uint64(n))
	return n, nil
}

// Isend implements comm.Comm. Sends are counted at post time (the layer
// below buffers eagerly), so the substrate's request is returned as-is.
func (m *Comm) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	req, err := m.inner.Isend(to, tag, buf)
	if err != nil {
		m.rc.sendErrors.Add(1)
		return nil, err
	}
	m.rc.sends.Add(1)
	m.rc.sendBytes.Add(uint64(len(buf)))
	return req, nil
}

// Irecv implements comm.Comm. The receive is counted when Wait observes
// completion (only then is the matched length known).
func (m *Comm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	req, err := m.inner.Irecv(from, tag, buf)
	if err != nil {
		m.rc.recvErrors.Add(1)
		return nil, err
	}
	return &recvRequest{Request: req, m: m}, nil
}

// recvRequest counts a nonblocking receive on completion; the wait
// histogram records the time blocked inside Wait (not since the post,
// which would charge compute overlap as waiting).
type recvRequest struct {
	comm.Request
	m    *Comm
	once sync.Once
}

// Wait implements comm.Request.
func (r *recvRequest) Wait() error {
	v0, t0 := r.m.waitStart()
	err := r.Request.Wait()
	r.once.Do(func() {
		if err != nil {
			r.m.rc.recvErrors.Add(1)
			return
		}
		r.m.rc.wait.Observe(r.m.waitNanos(v0, t0))
		r.m.rc.recvs.Add(1)
		r.m.rc.recvBytes.Add(uint64(r.Request.Len()))
	})
	return err
}

// Test implements comm.Tester when the wrapped request does. A completed
// test performs the same one-shot completion accounting as Wait, minus the
// wait-histogram sample (a successful poll never blocked). When the inner
// request does not support polling, Test reports not-done so callers fall
// back to Wait.
func (r *recvRequest) Test() (bool, error) {
	done, err, ok := comm.TryTest(r.Request)
	if !ok || !done {
		return false, nil
	}
	r.once.Do(func() {
		if err != nil {
			r.m.rc.recvErrors.Add(1)
			return
		}
		r.m.rc.recvs.Add(1)
		r.m.rc.recvBytes.Add(uint64(r.Request.Len()))
	})
	return true, err
}

// clockComm re-exposes comm.Clock for clocked substrates.
type clockComm struct {
	*Comm
}

// Now implements comm.Clock.
func (c *clockComm) Now() float64 { return c.clk.Now() }
