package metrics

import (
	"strings"
	"testing"
)

// TestFTCounters: the fault-tolerance counters land in snapshots, sum in
// Totals, and export to Prometheus.
func TestFTCounters(t *testing.T) {
	r := NewRegistry()
	r.FTAgreement(0, false)
	r.FTAgreement(0, true)
	r.FTAgreement(1, true)
	r.FTRetry(0)
	r.FTFailuresDetected(1, 2)
	r.FTFailuresDetected(1, 0) // no-op
	r.FTTimeout(0)

	s := r.Snapshot()
	r0 := s.Rank(0)
	if r0.FTAgreements != 2 || r0.FTAborted != 1 || r0.FTRetries != 1 || r0.FTTimeouts != 1 {
		t.Fatalf("rank 0 FT counters: %+v", *r0)
	}
	r1 := s.Rank(1)
	if r1.FTAgreements != 1 || r1.FTAborted != 1 || r1.FTFailures != 2 {
		t.Fatalf("rank 1 FT counters: %+v", *r1)
	}
	tot := s.Totals()
	if tot.FTAgreements != 3 || tot.FTAborted != 2 || tot.FTRetries != 1 || tot.FTFailures != 2 || tot.FTTimeouts != 1 {
		t.Fatalf("totals: %+v", tot)
	}

	var sb strings.Builder
	if err := WritePrometheus(&sb, s); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`gca_ft_agreements_total{rank="0"} 2`,
		`gca_ft_aborted_total{rank="1"} 1`,
		`gca_ft_retries_total{rank="0"} 1`,
		`gca_ft_failures_detected_total{rank="1"} 2`,
		`gca_ft_timeouts_total{rank="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
}
