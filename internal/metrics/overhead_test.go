package metrics

import (
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/transport/mem"
)

// nopComm is a do-nothing substrate, so allocation measurements isolate
// the wrapper itself from the transport underneath.
type nopComm struct{ rank, size int }

type nopRequest struct{ n int }

func (r *nopRequest) Wait() error { return nil }
func (r *nopRequest) Len() int    { return r.n }

var nopReq = &nopRequest{}

func (c *nopComm) Rank() int                                   { return c.rank }
func (c *nopComm) Size() int                                   { return c.size }
func (c *nopComm) ChargeCompute(n int)                         {}
func (c *nopComm) Send(to int, tag comm.Tag, buf []byte) error { return nil }
func (c *nopComm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	return len(buf), nil
}
func (c *nopComm) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return nopReq, nil
}
func (c *nopComm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return nopReq, nil
}

// TestCounterPathZeroAllocs proves the wrapper's counter path allocates
// nothing: Send, blocking Recv, Isend, and ChargeCompute over a no-op
// substrate must be allocation-free. (Irecv allocates exactly one small
// request wrapper, matching the substrate's own per-receive allocation.)
func TestCounterPathZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	mc := reg.Instrument(&nopComm{rank: 0, size: 2})
	buf := make([]byte, 1024)

	if n := testing.AllocsPerRun(1000, func() {
		if err := mc.Send(1, comm.TagUser, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Send allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := mc.Recv(1, comm.TagUser, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Recv allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := mc.Isend(1, comm.TagUser, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Isend allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { mc.ChargeCompute(len(buf)) }); n != 0 {
		t.Errorf("ChargeCompute allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		req, err := mc.Irecv(1, comm.TagUser, buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := req.Wait(); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Errorf("Irecv+Wait allocates %.1f per op, want <= 1 (the request wrapper)", n)
	}
}

// benchAllreduce times an 8-rank Allreduce on the mem transport,
// optionally instrumented — `go test -bench Instrumented -benchmem
// ./internal/metrics` shows the wrapper's overhead versus bare (the
// acceptance budget is <5%).
func benchAllreduce(b *testing.B, instrument bool) {
	const p = 8
	const nbytes = 8192
	w := mem.NewWorld(p)
	defer w.Close()
	reg := NewRegistry()
	alg, err := core.Lookup("allreduce_recmul")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = w.Run(func(c comm.Comm) error {
		if instrument {
			c = reg.Instrument(c)
		}
		a := core.Args{
			SendBuf: make([]byte, nbytes),
			RecvBuf: make([]byte, nbytes),
			Op:      datatype.Sum, Type: datatype.Float64, K: 4,
		}
		for i := 0; i < b.N; i++ {
			if err := alg.Run(c, a); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAllreduceBare(b *testing.B)         { benchAllreduce(b, false) }
func BenchmarkAllreduceInstrumented(b *testing.B) { benchAllreduce(b, true) }
