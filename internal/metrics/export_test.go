package metrics

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// handSnapshot builds a fully-populated snapshot by hand so exporter
// output is deterministic (no timing involved).
func handSnapshot() *Snapshot {
	reg := NewRegistry()
	rc0 := reg.rank(0)
	rc0.sends.Store(7)
	rc0.recvs.Store(5)
	rc0.sendBytes.Store(7168)
	rc0.recvBytes.Store(5120)
	rc0.computeBytes.Store(2048)
	rc0.wait.Observe(3)    // bucket 2
	rc0.wait.Observe(1000) // bucket 10
	rc1 := reg.rank(1)
	rc1.sends.Store(2)
	rc1.recvErrors.Store(1)
	reg.RecordDecision(Decision{
		Rank: 0, Op: "MPI_Allreduce", Bytes: 1024, Alg: "allreduce_recmul",
		K: 4, Start: 0.5, Seconds: 0.001,
	})
	return reg.Snapshot()
}

// TestPrometheusGolden pins the exposition format for a hand-built
// snapshot: exact counter lines, cumulative histogram buckets, and the
// collective family labels.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, handSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`gca_sends_total{rank="0"} 7`,
		`gca_sends_total{rank="1"} 2`,
		`gca_recvs_total{rank="0"} 5`,
		`gca_send_bytes_total{rank="0"} 7168`,
		`gca_recv_bytes_total{rank="0"} 5120`,
		`gca_compute_bytes_total{rank="0"} 2048`,
		`gca_recv_errors_total{rank="1"} 1`,
		// Cumulative buckets: value 3 lands in bucket 2 (le="3"), value
		// 1000 in bucket 10 (le="1023").
		`gca_recv_wait_ns_bucket{rank="0",le="3"} 1`,
		`gca_recv_wait_ns_bucket{rank="0",le="1023"} 2`,
		`gca_recv_wait_ns_bucket{rank="0",le="+Inf"} 2`,
		`gca_recv_wait_ns_sum{rank="0"} 1003`,
		`gca_recv_wait_ns_count{rank="0"} 2`,
		`gca_collective_runs_total{op="MPI_Allreduce",alg="allreduce_recmul",k="4"} 1`,
		`gca_collective_bytes_total{op="MPI_Allreduce",alg="allreduce_recmul",k="4"} 1024`,
		`gca_collective_seconds_total{op="MPI_Allreduce",alg="allreduce_recmul",k="4"} 0.001`,
		`gca_collective_latency_ns_count{op="MPI_Allreduce",alg="allreduce_recmul",k="4"} 1`,
		`gca_decisions_total 1`,
		`# TYPE gca_sends_total counter`,
		`# TYPE gca_recv_wait_ns histogram`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("prometheus output missing line %q\n--- got:\n%s", want, out)
		}
	}
	// Cumulative-bucket invariant: counts along each series never decrease
	// and close with +Inf == _count (spot-checked above); also no family
	// without a TYPE line.
	if strings.Count(out, "# TYPE") < 10 {
		t.Errorf("expected every family to carry a TYPE line:\n%s", out)
	}
}

// TestPrometheusTenants pins the multi-tenant exposition: one HELP/TYPE
// header per family, every tenant's series under it with {tenant, qos}
// ahead of the family's own labels — the family-major order the text
// format requires.
func TestPrometheusTenants(t *testing.T) {
	var buf bytes.Buffer
	tenants := []TenantSnapshot{
		{Tenant: "sess-1", QoS: "latency", Snapshot: handSnapshot()},
		{Tenant: "sess-2", QoS: "throughput", Snapshot: handSnapshot()},
		{Tenant: "nil-snap"}, // skipped, not crashed
	}
	if err := WritePrometheusTenants(&buf, tenants); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`gca_sends_total{tenant="sess-1",qos="latency",rank="0"} 7`,
		`gca_sends_total{tenant="sess-2",qos="throughput",rank="0"} 7`,
		`gca_recv_wait_ns_bucket{tenant="sess-1",qos="latency",rank="0",le="+Inf"} 2`,
		`gca_collective_runs_total{tenant="sess-2",qos="throughput",op="MPI_Allreduce",alg="allreduce_recmul",k="4"} 1`,
		`gca_decisions_total{tenant="sess-1",qos="latency"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("tenant output missing line %q\n--- got:\n%s", want, out)
		}
	}
	// Family-major: exactly one TYPE line per family even with two tenants.
	if n := strings.Count(out, "# TYPE gca_sends_total counter"); n != 1 {
		t.Errorf("gca_sends_total TYPE lines = %d, want 1", n)
	}
	// No series from the nil snapshot.
	if strings.Contains(out, "nil-snap") {
		t.Errorf("nil snapshot leaked series:\n%s", out)
	}
	// Both tenants' series sit under the single header, in order.
	h := strings.Index(out, "# TYPE gca_sends_total counter")
	s1 := strings.Index(out, `gca_sends_total{tenant="sess-1"`)
	s2 := strings.Index(out, `gca_sends_total{tenant="sess-2"`)
	next := strings.Index(out, "# TYPE gca_recvs_total counter")
	if !(h < s1 && s1 < s2 && s2 < next) {
		t.Errorf("family-major ordering violated: header=%d s1=%d s2=%d next=%d", h, s1, s2, next)
	}
}

// TestJSONTenantsRoundTrip proves WriteJSONTenants/ReadJSONTenants invert
// each other, identities included.
func TestJSONTenantsRoundTrip(t *testing.T) {
	in := []TenantSnapshot{
		{Tenant: "a", QoS: "latency", Snapshot: handSnapshot()},
		{Tenant: "b", QoS: "throughput", Snapshot: NewRegistry().Snapshot()},
	}
	var buf bytes.Buffer
	if err := WriteJSONTenants(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONTenants(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", in, got)
	}
}

// TestJSONRoundTrip proves WriteJSON/ReadJSON invert each other exactly,
// including histograms and recent decisions.
func TestJSONRoundTrip(t *testing.T) {
	s := handSnapshot()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", s, got)
	}
}

// TestJSONRoundTripEmpty covers the zero-value snapshot.
func TestJSONRoundTripEmpty(t *testing.T) {
	s := NewRegistry().Snapshot()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch: wrote %+v read %+v", s, got)
	}
}
