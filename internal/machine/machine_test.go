package machine

import "testing"

// TestSpecsValid checks the shipped machine models.
func TestSpecsValid(t *testing.T) {
	for _, s := range []Spec{Frontier(), Polaris(), Testbox()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	f := Frontier()
	if f.Ports != 4 {
		t.Errorf("Frontier ports = %d, want 4 (one 200Gb/s NIC per GPU pair)", f.Ports)
	}
	if f.Nodes != 9408 {
		t.Errorf("Frontier nodes = %d, want 9408", f.Nodes)
	}
	p := Polaris()
	if p.Ports != 2 {
		t.Errorf("Polaris ports = %d, want 2", p.Ports)
	}
	if p.BetaIntra >= p.BetaPort {
		t.Error("Polaris NVLink must be faster than its NIC ports")
	}
	if f.BetaIntra >= f.BetaPort {
		t.Error("Frontier Infinity Fabric must be faster than its NIC ports")
	}
}

// TestValidateRejects covers each validation branch.
func TestValidateRejects(t *testing.T) {
	base := Testbox()
	mutations := []func(*Spec){
		func(s *Spec) { s.Nodes = 0 },
		func(s *Spec) { s.PPN = 0 },
		func(s *Spec) { s.Ports = 0 },
		func(s *Spec) { s.NodesPerGroup = 0 },
		func(s *Spec) { s.BetaPort = 0 },
		func(s *Spec) { s.AlphaInter = 0 },
	}
	for i, mutate := range mutations {
		s := base
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
}

// TestPlacementMaps checks contiguous vs dispersed rank->node mapping and
// local ranks.
func TestPlacementMaps(t *testing.T) {
	s := Testbox() // 4 PPN
	p := 16
	// Contiguous: ranks 0..3 on node 0.
	for r := 0; r < 4; r++ {
		if got := s.NodeOf(r, p); got != 0 {
			t.Errorf("contiguous NodeOf(%d) = %d", r, got)
		}
		if got := s.LocalRank(r, p); got != r {
			t.Errorf("contiguous LocalRank(%d) = %d", r, got)
		}
	}
	if got := s.NodeOf(5, p); got != 1 {
		t.Errorf("contiguous NodeOf(5) = %d, want 1", got)
	}
	// Dispersed: consecutive ranks round-robin over the 4 nodes in use.
	d := s.WithPlacement(PlaceDispersed)
	for r := 0; r < 4; r++ {
		if got := d.NodeOf(r, p); got != r {
			t.Errorf("dispersed NodeOf(%d) = %d", r, got)
		}
	}
	if got := d.NodeOf(4, p); got != 0 {
		t.Errorf("dispersed NodeOf(4) = %d, want 0", got)
	}
	if got := d.LocalRank(4, p); got != 1 {
		t.Errorf("dispersed LocalRank(4) = %d, want 1", got)
	}
}

// TestGroupOf checks dragonfly grouping.
func TestGroupOf(t *testing.T) {
	s := Testbox() // 16 nodes per group
	if s.GroupOf(0) != 0 || s.GroupOf(15) != 0 || s.GroupOf(16) != 1 {
		t.Error("GroupOf boundaries wrong")
	}
}

// TestWithPPN checks the copy helpers don't mutate the original.
func TestWithPPN(t *testing.T) {
	f := Frontier()
	f8 := f.WithPPN(8)
	if f.PPN != 1 || f8.PPN != 8 {
		t.Errorf("WithPPN mutated: %d, %d", f.PPN, f8.PPN)
	}
	if f8.MaxRanks() != 8*f.Nodes {
		t.Errorf("MaxRanks = %d", f8.MaxRanks())
	}
}
