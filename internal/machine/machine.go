// Package machine defines the hardware models of the simulated systems:
// Frontier (OLCF), Polaris (ALCF), and a small generic test machine. The
// parameters capture the exascale commonalities §II-B identifies — multi-
// port NICs, high-bandwidth intranode links, per-message injection
// overhead (message buffering), and a dragonfly topology — at the level of
// detail the paper's findings depend on. Absolute values are calibrated to
// public system descriptions, not measured; figure reproductions compare
// shapes, not microseconds (see DESIGN.md §2).
package machine

import "fmt"

// PortPolicy selects how a rank's internode traffic maps onto its node's
// NIC ports.
type PortPolicy int

const (
	// PortAuto pins ranks to ports when PPN >= ports (the MPI+X and
	// 1-rank-per-GPU models, e.g. Frontier's 1 NIC per 2 GPUs) and stripes
	// across all ports when a node hosts fewer ranks than ports (the
	// 1-rank-per-node model).
	PortAuto PortPolicy = iota
	// PortPinned always pins rank r to port (localRank*ports)/ppn.
	PortPinned
	// PortStriped always picks the least-loaded port.
	PortStriped
)

// Placement maps ranks onto nodes.
type Placement int

const (
	// PlaceContiguous fills nodes in rank order (the scheduler-friendly
	// default; makes k-ring's intra-groups intranode when k = PPN).
	PlaceContiguous Placement = iota
	// PlaceDispersed spreads consecutive ranks round-robin across nodes,
	// modelling the fragmented placements large shared systems produce
	// (§VI-C3's explanation for k-ring losing at system scale).
	PlaceDispersed
)

func (p Placement) String() string {
	if p == PlaceDispersed {
		return "dispersed"
	}
	return "contiguous"
}

// Spec describes one simulated machine. Times are seconds, rates are
// seconds per byte.
type Spec struct {
	// Name identifies the machine in figure output.
	Name string
	// Nodes is the total node count available.
	Nodes int
	// PPN is the number of MPI processes placed per node.
	PPN int
	// Ports is the number of NIC ports per node (§II-B2's multi-port
	// feature; 4 on Frontier, 2 on Polaris).
	Ports int

	// AlphaIntra is the end-to-end latency of an intranode message.
	AlphaIntra float64
	// AlphaInter is the latency of an internode message within a dragonfly
	// group.
	AlphaInter float64
	// AlphaGlobal is the additional latency when crossing dragonfly
	// groups.
	AlphaGlobal float64
	// BetaIntra is the per-byte cost on intranode links (Infinity Fabric /
	// NVLink). Each ordered rank pair has a dedicated intranode link.
	BetaIntra float64
	// BetaPort is the per-byte serialization cost of one NIC port; ports
	// are shared node resources, so concurrent messages on one port queue.
	BetaPort float64
	// Gamma is the per-byte reduction (computation) cost of the paper's
	// cost model.
	Gamma float64
	// SendOverhead is the per-message CPU injection cost at the sender
	// (the o of LogGP); it is what ultimately bounds how many messages a
	// rank can usefully buffer per round.
	SendOverhead float64
	// RecvOverhead is the per-message completion cost at the receiver.
	RecvOverhead float64

	// NodesPerGroup is the dragonfly group size (only latency-relevant:
	// §II-B1 notes minimal adaptive routing makes path lengths uniform).
	NodesPerGroup int

	// PortMapping selects the rank→port policy.
	PortMapping PortPolicy
	// Place selects the rank→node mapping.
	Place Placement

	// Jitter adds deterministic pseudo-random noise to per-message wire
	// latency: each message's α is scaled by a factor drawn uniformly
	// from [1, 1+Jitter]. Zero (the default) disables it. This models the
	// run-to-run variance §VI-H reports and lets the autotuner be
	// exercised under noise; the draw sequence is seeded by JitterSeed so
	// runs remain reproducible.
	Jitter float64
	// JitterSeed seeds the noise sequence (only used when Jitter > 0).
	JitterSeed uint64
}

// WithJitter returns a copy with latency noise enabled.
func (s Spec) WithJitter(frac float64, seed uint64) Spec {
	s.Jitter = frac
	s.JitterSeed = seed
	return s
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	switch {
	case s.Nodes < 1:
		return fmt.Errorf("machine %s: Nodes=%d", s.Name, s.Nodes)
	case s.PPN < 1:
		return fmt.Errorf("machine %s: PPN=%d", s.Name, s.PPN)
	case s.Ports < 1:
		return fmt.Errorf("machine %s: Ports=%d", s.Name, s.Ports)
	case s.NodesPerGroup < 1:
		return fmt.Errorf("machine %s: NodesPerGroup=%d", s.Name, s.NodesPerGroup)
	case s.BetaPort <= 0 || s.BetaIntra <= 0:
		return fmt.Errorf("machine %s: non-positive bandwidth terms", s.Name)
	case s.AlphaInter <= 0 || s.AlphaIntra <= 0:
		return fmt.Errorf("machine %s: non-positive latency terms", s.Name)
	}
	return nil
}

// MaxRanks returns the largest communicator this machine can host.
func (s Spec) MaxRanks() int { return s.Nodes * s.PPN }

// NodeOf returns the node hosting rank r under the placement policy, given
// the total rank count p.
func (s Spec) NodeOf(r, p int) int {
	nodesUsed := (p + s.PPN - 1) / s.PPN
	if nodesUsed > s.Nodes {
		nodesUsed = s.Nodes
	}
	if s.Place == PlaceDispersed {
		return r % nodesUsed
	}
	return r / s.PPN
}

// LocalRank returns r's index within its node.
func (s Spec) LocalRank(r, p int) int {
	nodesUsed := (p + s.PPN - 1) / s.PPN
	if nodesUsed > s.Nodes {
		nodesUsed = s.Nodes
	}
	if s.Place == PlaceDispersed {
		return r / nodesUsed
	}
	return r % s.PPN
}

// GroupOf returns the dragonfly group of a node.
func (s Spec) GroupOf(node int) int { return node / s.NodesPerGroup }

// WithPPN returns a copy running the given number of processes per node
// (the paper evaluates both 1 PPN and 8 PPN on Frontier).
func (s Spec) WithPPN(ppn int) Spec { s.PPN = ppn; return s }

// WithPlacement returns a copy using the given placement.
func (s Spec) WithPlacement(p Placement) Spec { s.Place = p; return s }

// Frontier models an OLCF Frontier node: one EPYC CPU, 8 logical MI250X
// GPUs joined by Infinity Fabric, and four 200 Gb/s Slingshot NICs (one
// per GPU pair). Defaults to the 1-process-per-GPU model (8 PPN users call
// WithPPN(8); the paper's core results use 1 PPN on 128 nodes).
func Frontier() Spec {
	return Spec{
		Name:          "frontier",
		Nodes:         9408,
		PPN:           1,
		Ports:         4,
		AlphaIntra:    7e-7,       // Infinity Fabric hop
		AlphaInter:    1.8e-6,     // Slingshot intra-group
		AlphaGlobal:   4e-7,       // extra global-link hop
		BetaIntra:     1.0 / 72e9, // ~36 GB/s per IF link pair, bidirectional
		BetaPort:      1.0 / 24e9, // ~200 Gb/s NIC port (effective)
		Gamma:         1.0 / 96e9, // GPU-side reduction streams fast
		SendOverhead:  4e-7,
		RecvOverhead:  4e-7,
		NodesPerGroup: 128,
		PortMapping:   PortAuto,
		Place:         PlaceContiguous,
	}
}

// Polaris models an ALCF Polaris node: four A100 GPUs fully connected by
// 600 GB/s NVLink and two Slingshot ports behind PCIe Gen4. Defaults to 1
// PPN; the 1-process-per-GPU model is WithPPN(4).
func Polaris() Spec {
	return Spec{
		Name:          "polaris",
		Nodes:         560,
		PPN:           1,
		Ports:         2,
		AlphaIntra:    5e-7, // NVLink, fully connected
		AlphaInter:    2.0e-6,
		AlphaGlobal:   4e-7,
		BetaIntra:     1.0 / 300e9, // NVLink is far faster than the NIC
		BetaPort:      1.0 / 22e9,  // PCIe Gen4-limited Slingshot port
		Gamma:         1.0 / 96e9,
		SendOverhead:  4.5e-7,
		RecvOverhead:  4.5e-7,
		NodesPerGroup: 64,
		PortMapping:   PortAuto,
		Place:         PlaceContiguous,
	}
}

// Testbox is a small, fast-to-simulate machine for unit tests: 2 ports, 4
// PPN, mildly heterogeneous links.
func Testbox() Spec {
	return Spec{
		Name:          "testbox",
		Nodes:         64,
		PPN:           4,
		Ports:         2,
		AlphaIntra:    5e-7,
		AlphaInter:    2e-6,
		AlphaGlobal:   5e-7,
		BetaIntra:     1.0 / 50e9,
		BetaPort:      1.0 / 10e9,
		Gamma:         1.0 / 20e9,
		SendOverhead:  5e-7,
		RecvOverhead:  5e-7,
		NodesPerGroup: 16,
		PortMapping:   PortAuto,
		Place:         PlaceContiguous,
	}
}
