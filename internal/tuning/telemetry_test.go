package tuning

import (
	"bytes"
	"fmt"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/machine"
	"exacoll/internal/metrics"
	"exacoll/internal/transport/mem"
)

// TestRunRecordsDecisions proves Table.Run emits one selection-decision
// record per rank per collective when the communicator is instrumented,
// naming the algorithm and radix actually run — and that all ranks record
// the same choice.
func TestRunRecordsDecisions(t *testing.T) {
	const p = 8
	const nbytes = 1 << 10
	tab := Recommended(machine.Frontier(), p)
	want, err := tab.Select(core.OpAllreduce, nbytes)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	w := mem.NewWorld(p)
	defer w.Close()
	err = w.Run(func(c comm.Comm) error {
		mc := reg.Instrument(c)
		a := core.Args{
			SendBuf: datatype.EncodeFloat64(make([]float64, nbytes/8)),
			RecvBuf: make([]byte, nbytes),
			Op:      datatype.Sum, Type: datatype.Float64,
		}
		return tab.Run(mc, core.OpAllreduce, a)
	})
	if err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if s.DecisionsTotal != p {
		t.Fatalf("decisions_total = %d, want %d", s.DecisionsTotal, p)
	}
	if len(s.Decisions) != p {
		t.Fatalf("recent decisions = %d, want %d", len(s.Decisions), p)
	}
	seen := map[int]bool{}
	for _, d := range s.Decisions {
		if d.Op != core.OpAllreduce.String() || d.Alg != want.Alg || d.K != want.K || d.Bytes != nbytes {
			t.Errorf("decision %+v, want op=%s alg=%s k=%d bytes=%d",
				d, core.OpAllreduce, want.Alg, want.K, nbytes)
		}
		if d.Err {
			t.Errorf("decision %+v marked failed", d)
		}
		seen[d.Rank] = true
	}
	if len(seen) != p {
		t.Errorf("decisions cover %d ranks, want %d", len(seen), p)
	}
	if len(s.Collectives) != 1 || s.Collectives[0].Count != p {
		t.Errorf("aggregate %+v, want one (op, alg, k) entry with count %d", s.Collectives, p)
	}
	tot := s.Totals()
	if tot.Sends == 0 || tot.RecvBytes == 0 {
		t.Errorf("instrumented counters empty: %+v", tot)
	}
}

// TestScatterSelectionAgreement exercises the bug Run used to have: it
// selected on len(SendBuf) for every op, but only scatter's root holds
// the p·block send buffer, so root and non-roots walked different rungs
// of the ladder and ran incompatible algorithms. Selection must use the
// per-op size (core.SelectionSize) so every rank picks the same rung and
// the scatter delivers correct blocks.
func TestScatterSelectionAgreement(t *testing.T) {
	const p = 4
	const block = 2048 // p·block = 8 KiB: above the 4 KiB rung, block below
	tab := Recommended(machine.Testbox(), p)

	// The ladder must actually be size-dependent for this to be a test.
	small, err := tab.Select(core.OpScatter, block)
	if err != nil {
		t.Fatal(err)
	}
	large, err := tab.Select(core.OpScatter, p*block)
	if err != nil {
		t.Fatal(err)
	}
	if small == large {
		t.Fatalf("ladder not size-dependent across %d/%d bytes; test is vacuous", block, p*block)
	}

	reg := metrics.NewRegistry()
	w := mem.NewWorld(p)
	defer w.Close()
	results := make([][]byte, p)
	err = w.Run(func(c comm.Comm) error {
		mc := reg.Instrument(c)
		a := core.Args{RecvBuf: make([]byte, block), Root: 0}
		if c.Rank() == 0 {
			a.SendBuf = make([]byte, p*block)
			for i := range a.SendBuf {
				a.SendBuf[i] = byte(i / block) // block j filled with j
			}
		}
		if err := tab.Run(mc, core.OpScatter, a); err != nil {
			return err
		}
		results[c.Rank()] = a.RecvBuf
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, buf := range results {
		for i, b := range buf {
			if b != byte(r) {
				t.Fatalf("rank %d byte %d = %d, want %d", r, i, b, r)
			}
		}
	}

	// Every rank must have recorded the same (alg, k, bytes) — and the
	// size must be the per-rank block, not the root's full buffer.
	s := reg.Snapshot()
	if len(s.Collectives) != 1 {
		t.Fatalf("ranks disagreed on the selected algorithm: %+v", s.Collectives)
	}
	got := s.Collectives[0]
	if got.Alg != small.Alg || got.K != small.K {
		t.Errorf("selected %s k=%d, want %s k=%d (the block-size rung)", got.Alg, got.K, small.Alg, small.K)
	}
	for _, d := range s.Decisions {
		if d.Bytes != block {
			t.Errorf("rank %d selected on %d bytes, want block size %d", d.Rank, d.Bytes, block)
		}
	}
}

// TestRunUninstrumented pins that Run on a bare communicator stays
// telemetry-free and correct (the zero-cost default path).
func TestRunUninstrumented(t *testing.T) {
	const p = 4
	tab := Recommended(machine.Testbox(), p)
	w := mem.NewWorld(p)
	defer w.Close()
	err := w.Run(func(c comm.Comm) error {
		buf := []byte("payload-")
		if c.Rank() == 2 {
			buf = []byte("broadcast")
		}
		b := make([]byte, 9)
		copy(b, buf)
		if err := tab.Run(c, core.OpBcast, core.Args{SendBuf: b, Root: 2}); err != nil {
			return err
		}
		if !bytes.Equal(b, []byte("broadcast")) {
			return fmt.Errorf("rank %d got %q", c.Rank(), b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
