// External test package: this test drives the autotuner with simulator
// measurements from internal/bench, which itself imports internal/tuning
// (the overlap benchmark runs through a Table) — an in-package test here
// would be an import cycle.
package tuning_test

import (
	"testing"

	"exacoll/internal/bench"
	"exacoll/internal/core"
	"exacoll/internal/machine"
	"exacoll/internal/tuning"
)

// TestAutotuneUnderJitter runs the autotuner against the simulator with
// the §VI-H run-to-run variance model enabled: the ladder must still
// validate, and the chosen small-message allreduce must be a
// latency-optimized algorithm rather than the ring.
func TestAutotuneUnderJitter(t *testing.T) {
	spec := machine.Frontier().WithJitter(0.3, 99)
	const p = 16
	ops := map[core.CollOp][]tuning.Candidate{
		core.OpAllreduce: {
			{Alg: "allreduce_ring"},
			{Alg: "allreduce_recmul", K: 4},
			{Alg: "allreduce_recmul", K: 8},
		},
	}
	measure := func(cand tuning.Candidate, n int) (float64, error) {
		alg, err := core.Lookup(cand.Alg)
		if err != nil {
			return 0, err
		}
		return bench.SimLatency(spec, p, alg.Op, alg.Run, n, 0, cand.K)
	}
	tab, err := tuning.Autotune(ops, []int{8, 1 << 10, 64 << 10}, measure)
	if err != nil {
		t.Fatal(err)
	}
	e, err := tab.Select(core.OpAllreduce, 8)
	if err != nil {
		t.Fatal(err)
	}
	if e.Alg == "allreduce_ring" {
		t.Errorf("jittered autotune picked the ring for 8-byte allreduce: %+v", e)
	}
}
