package tuning

import (
	"exacoll/internal/core"
	"exacoll/internal/machine"
)

// Recommended builds the selection configuration encoding the paper's
// empirical guidelines (§VI-F/G) for a machine, without running the
// autotuner:
//
//   - k-nomial for rooted, latency-bound collectives, with a large radix
//     for tiny messages (message buffering dominates) shrinking as the
//     message grows, upper-bounded well below p at scale (Fig. 10a);
//   - recursive multiplying with k = the NIC port count (or a small
//     multiple) for allreduce/allgather across sizes (Fig. 8b);
//   - k-ring with k = PPN for large-message bcast/allgather when several
//     ranks share a node with fast intranode links (Fig. 8c);
//   - classic bandwidth algorithms (ring, reduce-scatter-allgather) where
//     the paper found generalization does not pay.
//
// cmd/gcatune generates the measured equivalent with the autotuner; this
// function is the "turnkey" default a user gets without tuning.
func Recommended(spec machine.Spec, p int) *Table {
	ports := spec.Ports
	if ports < 2 {
		ports = 2
	}
	ppn := spec.PPN

	kSmall := p // tiny messages: radix at or near p...
	if kSmall > 128 {
		kSmall = 128 // ...but bounded at scale (Fig. 10a)
	}
	if kSmall < 2 {
		kSmall = 2
	}
	kMid := 4 * ports
	if kMid > p {
		kMid = maxIntT(2, p)
	}

	t := &Table{Machine: spec.Name, P: p, PPN: ppn, Ops: map[string][]Entry{}}

	t.Ops[core.OpReduce.String()] = []Entry{
		{MaxBytes: 4 << 10, Alg: "reduce_knomial", K: kSmall},
		{MaxBytes: 256 << 10, Alg: "reduce_knomial", K: kMid},
		{Alg: "reduce_knomial", K: 2},
	}
	t.Ops[core.OpGather.String()] = []Entry{
		{MaxBytes: 4 << 10, Alg: "gather_knomial", K: kMid},
		{Alg: "gather_binomial"},
	}
	t.Ops[core.OpScatter.String()] = []Entry{
		{MaxBytes: 4 << 10, Alg: "scatter_knomial", K: kMid},
		{Alg: "scatter_binomial"},
	}

	bcast := []Entry{
		{MaxBytes: 16 << 10, Alg: "bcast_knomial", K: kSmall},
		{MaxBytes: 256 << 10, Alg: "bcast_recmul", K: ports},
	}
	if ppn > 1 {
		bcast = append(bcast, Entry{Alg: "bcast_kring", K: ppn})
	} else {
		bcast = append(bcast, Entry{Alg: "bcast_recmul", K: 4 * ports})
	}
	t.Ops[core.OpBcast.String()] = bcast

	t.Ops[core.OpAllgather.String()] = []Entry{
		{MaxBytes: 512 << 10, Alg: "allgather_recmul", K: ports},
		{Alg: "allgather_ring"},
	}
	t.Ops[core.OpAllreduce.String()] = []Entry{
		{MaxBytes: 1 << 20, Alg: "allreduce_recmul", K: ports},
		{Alg: "allreduce_rabenseifner"},
	}
	rs := []Entry{{Alg: "reducescatter_ring"}}
	if ppn > 1 {
		rs = []Entry{
			{MaxBytes: 64 << 10, Alg: "reducescatter_ring"},
			{Alg: "reducescatter_kring", K: ppn},
		}
	}
	t.Ops[core.OpReduceScatter.String()] = rs
	t.Ops[core.OpAlltoall.String()] = []Entry{
		{MaxBytes: 1 << 10, Alg: "alltoall_bruck"},
		{Alg: "alltoall_pairwise"},
	}
	t.Ops[core.OpScan.String()] = []Entry{
		{Alg: "scan_hillissteele"},
	}
	// Vector collectives select on the shared total of the count vector
	// (core.SelectionSize), so skew never splits the ranks' choices: the
	// Bruck dissemination wins while latency dominates, the ring and the
	// linear exchange win once the aggregate payload is bandwidth-bound.
	t.Ops[core.OpAllgatherv.String()] = []Entry{
		{MaxBytes: 256 << 10, Alg: "allgatherv_knomial_bruck", K: kMid},
		{Alg: "allgatherv_ring"},
	}
	t.Ops[core.OpReduceScatterv.String()] = []Entry{
		{Alg: "reducescatterv_ring"},
	}
	t.Ops[core.OpAlltoallv.String()] = []Entry{
		{MaxBytes: 8 << 10, Alg: "alltoallv_bruck"},
		{Alg: "alltoallv_linear"},
	}
	return t
}

// RecommendedIntra builds the node-level selection ladders the topology
// engine (internal/topo) uses for the intranode phases of hierarchical
// collectives. Intranode fabrics give every ordered rank pair a dedicated
// link (machine.Spec.BetaIntra), so the tradeoff differs from the NIC
// tier: flat high-radix trees (k = PPN, one round) win while latency
// dominates, and ring-style bandwidth algorithms take over for large
// payloads. Only the operations the engine lowers to the node level are
// present: reduce, bcast, gather, allgather.
func RecommendedIntra(spec machine.Spec, ppn int) *Table {
	kFull := ppn // one-round flat tree across the node...
	if kFull < 2 {
		kFull = 2 // ...but k-nomial requires k >= 2
	}
	t := &Table{Machine: spec.Name + "-intra", P: ppn, PPN: ppn, Ops: map[string][]Entry{}}
	t.Ops[core.OpReduce.String()] = []Entry{
		{MaxBytes: 64 << 10, Alg: "reduce_knomial", K: kFull},
		{Alg: "reduce_knomial", K: 2},
	}
	t.Ops[core.OpBcast.String()] = []Entry{
		{MaxBytes: 64 << 10, Alg: "bcast_knomial", K: kFull},
		{Alg: "bcast_ring"},
	}
	t.Ops[core.OpGather.String()] = []Entry{
		{MaxBytes: 64 << 10, Alg: "gather_knomial", K: kFull},
		{Alg: "gather_binomial"},
	}
	t.Ops[core.OpAllgather.String()] = []Entry{
		{MaxBytes: 64 << 10, Alg: "allgather_knomial", K: kFull},
		{Alg: "allgather_ring"},
	}
	return t
}

func maxIntT(a, b int) int {
	if a > b {
		return a
	}
	return b
}
