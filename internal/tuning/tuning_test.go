package tuning

import (
	"bytes"
	"strings"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/transport/mem"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tab := &Table{
		Machine: "testbox", P: 8, PPN: 4,
		Ops: map[string][]Entry{
			"MPI_Allreduce": {
				{MaxBytes: 1024, Alg: "allreduce_recmul", K: 4},
				{MaxBytes: 65536, Alg: "allreduce_recdbl"},
				{Alg: "allreduce_ring"},
			},
			"MPI_Bcast": {
				{MaxBytes: 4096, Alg: "bcast_knomial", K: 8},
				{Alg: "bcast_ring"},
			},
		},
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestRoundTrip saves and reloads a table.
func TestRoundTrip(t *testing.T) {
	tab := sampleTable(t)
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Machine != tab.Machine || len(got.Ops) != len(tab.Ops) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	e, err := got.Select(core.OpAllreduce, 512)
	if err != nil {
		t.Fatal(err)
	}
	if e.Alg != "allreduce_recmul" || e.K != 4 {
		t.Errorf("Select(512) = %+v", e)
	}
}

// TestSelectLadder walks the rungs.
func TestSelectLadder(t *testing.T) {
	tab := sampleTable(t)
	cases := []struct {
		n    int
		want string
	}{
		{8, "allreduce_recmul"},
		{1024, "allreduce_recmul"},
		{1025, "allreduce_recdbl"},
		{65536, "allreduce_recdbl"},
		{1 << 24, "allreduce_ring"},
	}
	for _, tc := range cases {
		e, err := tab.Select(core.OpAllreduce, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if e.Alg != tc.want {
			t.Errorf("Select(%d) = %s, want %s", tc.n, e.Alg, tc.want)
		}
	}
	if _, err := tab.Select(core.OpGather, 8); err == nil {
		t.Error("want error for missing ladder")
	}
}

// TestValidateRejects covers the malformed-table paths.
func TestValidateRejects(t *testing.T) {
	bad := []*Table{
		{Ops: map[string][]Entry{"MPI_Bcast": {}}},
		{Ops: map[string][]Entry{"MPI_Bcast": {{Alg: "no_such_alg"}}}},
		{Ops: map[string][]Entry{"MPI_Bcast": {{Alg: "allreduce_ring"}}}},          // wrong op
		{Ops: map[string][]Entry{"MPI_Bcast": {{Alg: "bcast_knomial"}}}},           // k missing
		{Ops: map[string][]Entry{"MPI_Bcast": {{MaxBytes: 8, Alg: "bcast_ring"}}}}, // bounded final rung
		{Ops: map[string][]Entry{"MPI_Bcast": { // non-increasing
			{MaxBytes: 64, Alg: "bcast_ring"}, {MaxBytes: 32, Alg: "bcast_binomial"}, {Alg: "bcast_ring"},
		}}},
	}
	for i, tab := range bad {
		if err := tab.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
	if _, err := Load(strings.NewReader(`{"ops": {"MPI_Bcast": [{"alg": "bcast_ring"}]}, "bogus": 1}`)); err == nil {
		t.Error("want error for unknown fields")
	}
}

// TestRunHonorsConfig runs a tuned collective on the mem transport and
// verifies both the selection and the result.
func TestRunHonorsConfig(t *testing.T) {
	tab := sampleTable(t)
	const p = 8
	w := mem.NewWorld(p)
	err := w.Run(func(c comm.Comm) error {
		vals := []float64{float64(c.Rank()), 2}
		sendbuf := datatype.EncodeFloat64(vals)
		recvbuf := make([]byte, len(sendbuf))
		a := core.Args{SendBuf: sendbuf, RecvBuf: recvbuf, Op: datatype.Sum, Type: datatype.Float64}
		if err := tab.Run(c, core.OpAllreduce, a); err != nil {
			return err
		}
		got := datatype.DecodeFloat64(recvbuf)
		if got[0] != 28 || got[1] != 16 { // 0+..+7, 2*8
			t.Errorf("rank %d: allreduce = %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAutotune builds a ladder from synthetic costs: candidate A wins
// below the crossover, B above, and the ladder must merge into two rungs.
func TestAutotune(t *testing.T) {
	ops := map[core.CollOp][]Candidate{
		core.OpAllreduce: {
			{Alg: "allreduce_recmul", K: 4},
			{Alg: "allreduce_ring"},
		},
	}
	sizes := []int{8, 64, 512, 4096, 32768, 262144}
	measure := func(cand Candidate, n int) (float64, error) {
		if cand.Alg == "allreduce_recmul" {
			return 1 + float64(n)*0.01, nil // latency-cheap, bandwidth-poor
		}
		return 50 + float64(n)*0.001, nil // ring: bandwidth-optimal
	}
	tab, err := Autotune(ops, sizes, measure)
	if err != nil {
		t.Fatal(err)
	}
	ladder := tab.Ops["MPI_Allreduce"]
	if len(ladder) != 2 {
		t.Fatalf("ladder = %+v, want 2 rungs", ladder)
	}
	if ladder[0].Alg != "allreduce_recmul" || ladder[0].K != 4 {
		t.Errorf("small rung = %+v", ladder[0])
	}
	if ladder[1].Alg != "allreduce_ring" || ladder[1].MaxBytes != 0 {
		t.Errorf("large rung = %+v", ladder[1])
	}
	// Crossover: 1+0.01n < 50+0.001n up to n≈5444 → rung boundary at 4096.
	if ladder[0].MaxBytes != 4096 {
		t.Errorf("crossover at %d, want 4096", ladder[0].MaxBytes)
	}
}
