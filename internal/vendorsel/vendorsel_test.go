package vendorsel

import (
	"bytes"
	"fmt"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/transport/mem"
)

// TestLadderShape pins the calibrated selection behaviour the figure
// reproductions rely on (see the package comment for why each rung is what
// it is).
func TestLadderShape(t *testing.T) {
	p := 128
	cases := []struct {
		op   core.CollOp
		n    int
		want string
	}{
		{core.OpReduce, 8, "reduce_binomial"},
		{core.OpReduce, 64 << 10, "reduce_binomial"},
		{core.OpReduce, 1 << 20, "reduce_linear"}, // the paper's >4.5x mis-switch
		{core.OpBcast, 8, "bcast_binomial"},
		{core.OpBcast, 64 << 10, "bcast_recdbl"},
		{core.OpBcast, 4 << 20, "bcast_ring"},
		{core.OpAllgather, 8, "allgather_bruck"},
		{core.OpAllgather, 4 << 10, "allgather_recdbl"},
		{core.OpAllgather, 1 << 20, "allgather_ring"},
		{core.OpAllreduce, 8, "allreduce_recdbl"},
		{core.OpAllreduce, 1 << 20, "allreduce_rabenseifner"},
		{core.OpGather, 8, "gather_binomial"},
		{core.OpScatter, 8, "scatter_binomial"},
		{core.OpReduceScatter, 8, "reducescatter_rechalving"},
		{core.OpAlltoall, 8, "alltoall_bruck"},
		{core.OpAlltoall, 1 << 20, "alltoall_pairwise"},
		{core.OpScan, 8, "scan_hillissteele"},
	}
	for _, tc := range cases {
		got := Select(tc.op, tc.n, p)
		if got.Name != tc.want {
			t.Errorf("Select(%v, %d, %d) = %s, want %s", tc.op, tc.n, p, got.Name, tc.want)
		}
	}
}

// TestNonPow2FallsBack: recursive-doubling choices must not be selected
// for non-power-of-two sizes.
func TestNonPow2FallsBack(t *testing.T) {
	if got := Select(core.OpBcast, 64<<10, 100); got.Name == "bcast_recdbl" {
		t.Error("selected pow2-only bcast_recdbl for p=100")
	}
	if got := Select(core.OpAllgather, 4<<10, 100); got.Name == "allgather_recdbl" {
		t.Error("selected pow2-only allgather_recdbl for p=100")
	}
}

// TestSelectionsResolve: every reachable selection must name a registered
// algorithm of the right operation.
func TestSelectionsResolve(t *testing.T) {
	for _, op := range []core.CollOp{core.OpBcast, core.OpReduce, core.OpGather,
		core.OpScatter, core.OpAllgather, core.OpAllreduce,
		core.OpReduceScatter, core.OpAlltoall, core.OpScan} {
		for _, p := range []int{2, 7, 128, 1000} {
			for _, n := range []int{1, 1 << 10, 1 << 18, 1 << 24} {
				choice := Select(op, n, p)
				alg, err := core.Lookup(choice.Name)
				if err != nil {
					t.Fatalf("Select(%v,%d,%d): %v", op, n, p, err)
				}
				if alg.Op != op {
					t.Errorf("Select(%v,%d,%d) = %s implements %v", op, n, p, alg.Name, alg.Op)
				}
			}
		}
	}
}

// TestRunEndToEnd runs the vendor selection on the mem transport for a
// full sweep of sizes, verifying correct results.
func TestRunEndToEnd(t *testing.T) {
	const p = 8
	for _, n := range []int{8, 4096, 128 << 10} {
		n := n
		w := mem.NewWorld(p)
		err := w.Run(func(c comm.Comm) error {
			elems := n / 8
			vals := make([]float64, elems)
			for i := range vals {
				vals[i] = float64(c.Rank() + i)
			}
			sendbuf := datatype.EncodeFloat64(vals)
			recvbuf := make([]byte, len(sendbuf))
			a := core.Args{SendBuf: sendbuf, RecvBuf: recvbuf, Op: datatype.Sum, Type: datatype.Float64}
			if err := Run(c, core.OpAllreduce, a); err != nil {
				return err
			}
			got := datatype.DecodeFloat64(recvbuf)
			for i := 0; i < elems; i += elems/4 + 1 {
				want := float64(28 + 8*i) // sum over ranks of (r + i)
				if got[i] != want {
					return fmt.Errorf("n=%d elem %d = %g, want %g", n, i, got[i], want)
				}
			}
			// Bcast through the vendor path too.
			buf := make([]byte, n)
			if c.Rank() == 2 {
				for i := range buf {
					buf[i] = byte(i % 251)
				}
			}
			ba := core.Args{SendBuf: buf, Root: 2}
			if err := Run(c, core.OpBcast, ba); err != nil {
				return err
			}
			want := make([]byte, n)
			for i := range want {
				want[i] = byte(i % 251)
			}
			if !bytes.Equal(buf, want) {
				return fmt.Errorf("n=%d bcast mismatch at rank %d", n, c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
