// Package vendorsel is the stand-in for the proprietary vendor MPI the
// paper benchmarks against (Cray MPI on Frontier, §VI-B): a fixed,
// size-keyed selection table over the standard fixed-radix algorithms,
// representing "what a production user gets by default".
//
// The table is calibrated to reproduce the behaviours §VI-C3 reports:
//
//   - Reduce: binomial for small messages — matching the paper's
//     observation that Cray MPI "is also employing the binomial algorithm
//     instead of the more competitive linear algorithm", so the
//     generalized k-nomial speedup over the vendor matches the speedup
//     over binomial at small sizes — and a deliberately poor large-message
//     choice (flat linear reduce) reproducing the >4.5× gap where the
//     paper believes Cray MPI "is incorrectly switching algorithms".
//   - Bcast: competitive at small/medium sizes (no vendor speedup below
//     256 KB in Fig. 9(b)).
//   - Allgather/Allreduce: the standard MPICH-style ladder (Bruck /
//     recursive doubling / ring, recursive doubling / reduce-scatter-
//     allgather), which the generalized algorithms beat by 1.2–2×.
package vendorsel

import (
	"exacoll/internal/comm"
	"exacoll/internal/core"
)

// Choice is one vendor selection: an algorithm and (always default) radix.
type Choice struct {
	// Name is the registry name of the selected algorithm.
	Name string
	// K is the radix passed to generalized algorithms (vendors ship fixed
	// radix, so this is always the kernel's default).
	K int
}

// Select returns the vendor's default algorithm for the operation, message
// size and communicator size (p ranks). It mirrors a production
// size-ladder selection.
func Select(op core.CollOp, nbytes, p int) Choice {
	pow2 := p > 0 && p&(p-1) == 0
	switch op {
	case core.OpBcast:
		switch {
		case nbytes <= 16<<10:
			return Choice{Name: "bcast_binomial"}
		case nbytes <= 512<<10 && pow2:
			return Choice{Name: "bcast_recdbl"}
		default:
			return Choice{Name: "bcast_ring"}
		}
	case core.OpReduce:
		if nbytes <= 64<<10 {
			return Choice{Name: "reduce_binomial"}
		}
		// The mis-switch: a flat reduce at bandwidth-bound sizes. See the
		// package comment; this is what produces Fig. 9(a)'s >4.5× spike.
		return Choice{Name: "reduce_linear"}
	case core.OpGather:
		return Choice{Name: "gather_binomial"}
	case core.OpScatter:
		return Choice{Name: "scatter_binomial"}
	case core.OpAllgather:
		switch {
		case nbytes*p <= 32<<10:
			return Choice{Name: "allgather_bruck"}
		case nbytes*p <= 1<<20 && pow2:
			return Choice{Name: "allgather_recdbl"}
		default:
			return Choice{Name: "allgather_ring"}
		}
	case core.OpAllreduce:
		switch {
		case nbytes <= 2<<10:
			return Choice{Name: "allreduce_recdbl"}
		default:
			return Choice{Name: "allreduce_rabenseifner"}
		}
	case core.OpReduceScatter:
		if pow2 && nbytes <= 512<<10 {
			return Choice{Name: "reducescatter_rechalving"}
		}
		return Choice{Name: "reducescatter_ring"}
	case core.OpAlltoall:
		if nbytes <= 1<<10 {
			return Choice{Name: "alltoall_bruck"}
		}
		return Choice{Name: "alltoall_pairwise"}
	case core.OpScan:
		if p <= 4 {
			return Choice{Name: "scan_linear"}
		}
		return Choice{Name: "scan_hillissteele"}
	}
	return Choice{Name: "bcast_binomial"}
}

// Run executes the vendor's selection for the operation.
func Run(c comm.Comm, op core.CollOp, a core.Args) error {
	choice := Select(op, argBytes(op, a), c.Size())
	alg, err := core.Lookup(choice.Name)
	if err != nil {
		return err
	}
	if alg.Generalized {
		a.K = alg.DefaultK
	}
	return alg.Run(c, a)
}

// argBytes returns the message size the selection ladder keys on.
func argBytes(op core.CollOp, a core.Args) int {
	switch op {
	case core.OpScatter:
		return len(a.RecvBuf)
	case core.OpAlltoall:
		if p := len(a.SendBuf); p > 0 {
			return p
		}
	}
	return len(a.SendBuf)
}
