package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/machine"
	"exacoll/internal/simnet"
	"exacoll/internal/transport/mem"
)

// TestRecordBcast traces a binomial bcast on the mem transport: p-1
// receives must be recorded and byte counts must match.
func TestRecordBcast(t *testing.T) {
	const p, n = 8, 256
	sink := NewSink()
	w := mem.NewWorld(p)
	err := w.Run(func(c comm.Comm) error {
		buf := make([]byte, n)
		return core.BcastBinomial(sink.Wrap(c), buf, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	sends, recvs := 0, 0
	for _, e := range sink.Events() {
		switch e.Kind {
		case KindSend:
			sends++
		case KindRecv:
			recvs++
		}
		if e.Bytes != n {
			t.Errorf("event with %d bytes, want %d", e.Bytes, n)
		}
	}
	if sends != p-1 || recvs != p-1 {
		t.Errorf("sends=%d recvs=%d, want %d each", sends, recvs, p-1)
	}
	sums := sink.Summarize()
	if len(sums) == 0 || sums[0].Rank != 0 || sums[0].Sends == 0 {
		t.Errorf("summaries = %+v", sums)
	}
}

// TestVirtualTimestamps traces on the simulator: recv events must carry
// increasing virtual times and the Chrome trace must be valid JSON.
func TestVirtualTimestamps(t *testing.T) {
	sink := NewSink()
	sim, err := simnet.New(machine.Testbox(), 8)
	if err != nil {
		t.Fatal(err)
	}
	err = sim.Run(func(c comm.Comm) error {
		tc := sink.Wrap(c)
		if _, ok := tc.(comm.Clock); !ok {
			t.Error("wrapped sim comm lost the Clock interface")
		}
		sendbuf := datatype.EncodeFloat64([]float64{1, 2, 3})
		recvbuf := make([]byte, len(sendbuf))
		return core.AllreduceRecDbl(tc, sendbuf, recvbuf, datatype.Sum, datatype.Float64)
	})
	if err != nil {
		t.Fatal(err)
	}
	sawTime := false
	for _, e := range sink.Events() {
		if e.Time > 0 {
			sawTime = true
		}
	}
	if !sawTime {
		t.Error("no virtual timestamps recorded")
	}
	var buf bytes.Buffer
	if err := sink.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed) != len(sink.Events()) {
		t.Errorf("trace has %d events, want %d", len(parsed), len(sink.Events()))
	}
	if out := FormatEvents(sink.Events()); !strings.Contains(out, "rank") {
		t.Error("FormatEvents produced no output")
	}
}

// TestChromeTraceSpans checks that spans recorded via RecordSpan (the
// metrics subsystem's selection telemetry feed) render as Chrome
// complete events with durations, alongside point events.
func TestChromeTraceSpans(t *testing.T) {
	sink := NewSink()
	sink.RecordSpan(2, "MPI_Allreduce allreduce_recmul", 0.001, 0.0005)
	sink.record(Event{Rank: 2, Kind: KindSend, Peer: 3, Bytes: 64, Time: 0.0012})

	var buf bytes.Buffer
	if err := sink.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed) != 2 {
		t.Fatalf("trace has %d events, want 2", len(parsed))
	}
	span := parsed[0]
	if span["ph"] != "X" {
		t.Errorf("span phase = %v, want X", span["ph"])
	}
	if span["name"] != "MPI_Allreduce allreduce_recmul" {
		t.Errorf("span name = %v", span["name"])
	}
	if dur, ok := span["dur"].(float64); !ok || dur != 500 {
		t.Errorf("span dur = %v us, want 500", span["dur"])
	}
	if out := FormatEvents(sink.Events()); !strings.Contains(out, "allreduce_recmul") {
		t.Errorf("FormatEvents dropped the span label:\n%s", out)
	}
	// Spans must not perturb per-rank send/recv summaries.
	for _, s := range sink.Summarize() {
		if s.Rank == 2 && s.Sends != 1 {
			t.Errorf("summary sends = %d, want 1", s.Sends)
		}
	}
}

// TestDumpTreeFigures checks the ASCII dumps reproduce the structures of
// Figs. 1–6.
func TestDumpTreeFigures(t *testing.T) {
	fig2 := DumpKnomialTree(6, 3)
	if !strings.Contains(fig2, "depth=2") {
		t.Errorf("trinomial p=6 dump:\n%s", fig2)
	}
	fig4 := DumpRecMulRounds(9, 3)
	for _, want := range []string{"2 rounds", "{0,1,2}", "{0,3,6}"} {
		if !strings.Contains(fig4, want) {
			t.Errorf("recmul p=9 k=3 dump missing %q:\n%s", want, fig4)
		}
	}
	s, err := core.KRingSchedule(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	fig6 := DumpSchedule(s, 3)
	if !strings.Contains(fig6, "5 rounds") || strings.Count(fig6, "INTER") != 1 {
		t.Errorf("k-ring p=6 k=3 dump:\n%s", fig6)
	}
}
