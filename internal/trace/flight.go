package trace

import (
	"io"
	"sort"

	"exacoll/internal/comm"
	"exacoll/internal/flight"
)

// WriteFlightTrace renders a flight-recorder dump's merged cross-rank
// timeline as Chrome trace-event JSON through the sink renderer: every
// rank's Begin/End pairs become spans on that rank's thread, point events
// (send/recv posts and completions, segment boundaries, marks) become
// instants. Timestamps are the aligned global timeline — each rank's
// local clock rebased into rank 0's by the dump's offset probes.
//
// The adapter lives here rather than in internal/flight to keep flight a
// leaf package (core's reduction kernels record into it; this package
// renders core schedules).
func WriteFlightTrace(w io.Writer, d *flight.Dump) error {
	var tev []Event
	for r := range d.Ranks {
		rd := d.Ranks[r]
		events := d.AlignedRank(r)
		// Match Begin/End pairs per kind with a stack of unmatched Begins;
		// an End whose Begin was ring-dropped renders as an instant.
		open := map[flight.Kind][]int{}
		matched := make([]int, len(events)) // End index -> Begin index, else -1
		for i := range matched {
			matched[i] = -1
		}
		for i, e := range events {
			if bk := flight.BeginOf(e.Kind); bk != flight.EvNone {
				if s := open[bk]; len(s) > 0 {
					matched[i] = s[len(s)-1]
					open[bk] = s[:len(s)-1]
				}
				continue
			}
			switch e.Kind {
			case flight.EvWaitBegin, flight.EvReduceBegin, flight.EvCollBegin,
				flight.EvPhaseBegin, flight.EvAgreeBegin:
				open[e.Kind] = append(open[e.Kind], i)
			}
		}
		consumed := map[int]bool{}
		for i := range events {
			if matched[i] >= 0 {
				consumed[matched[i]] = true
			}
		}
		for i, e := range events {
			if consumed[i] {
				continue // rendered by its matching End
			}
			if b := matched[i]; b >= 0 {
				begin := events[b]
				tev = append(tev, Event{
					Rank: r, Kind: KindSpan, Peer: -1,
					Label: flight.SpanLabel(rd, e),
					Time:  float64(begin.T) / 1e9,
					Dur:   float64(e.T-begin.T) / 1e9,
				})
				continue
			}
			tev = append(tev, Event{
				Rank: r, Kind: Kind(e.Kind.String()),
				Peer: int(e.Peer), Tag: comm.Tag(e.Tag), Bytes: int(e.Bytes),
				Time: float64(e.T) / 1e9,
			})
		}
	}
	sort.Slice(tev, func(i, j int) bool { return tev[i].Time < tev[j].Time })
	return WriteChromeEvents(w, tev)
}
