package trace

import (
	"fmt"
	"strings"

	"exacoll/internal/core"
)

// DumpKnomialTree renders a k-nomial tree as indented ASCII — the textual
// equivalent of the paper's Figs. 1 (binomial) and 2 (trinomial).
func DumpKnomialTree(p, k int) string {
	t := core.KnomialTree{P: p, K: k}
	var b strings.Builder
	fmt.Fprintf(&b, "k-nomial tree, p=%d, k=%d, depth=%d\n", p, k, t.Depth())
	var walk func(v, indent int)
	walk = func(v, indent int) {
		fmt.Fprintf(&b, "%s%d\n", strings.Repeat("  ", indent), v)
		for _, ch := range t.Children(v) {
			walk(ch.VRank, indent+1)
		}
	}
	walk(0, 0)
	return b.String()
}

// DumpRecMulRounds renders the recursive-multiplying group structure per
// round — the textual equivalent of Figs. 3 (recursive doubling) and 4
// (p=9, k=3).
func DumpRecMulRounds(p, k int) string {
	q, factors := core.RecMulPlan(p, k)
	var b strings.Builder
	fmt.Fprintf(&b, "recursive multiplying, p=%d, k=%d", p, k)
	if q != p {
		fmt.Fprintf(&b, " (fold to p'=%d, %d ranks proxied)", q, p-q)
	}
	fmt.Fprintf(&b, ", %d rounds\n", len(factors))
	w := 1
	for i, f := range factors {
		fmt.Fprintf(&b, "round %d (groups of %d, spacing %d):", i+1, f, w)
		seen := make([]bool, q)
		for s := 0; s < q; s++ {
			if seen[s] {
				continue
			}
			d := (s / w) % f
			base := s - d*w
			var members []string
			for j := 0; j < f; j++ {
				members = append(members, fmt.Sprintf("%d", base+j*w))
				seen[base+j*w] = true
			}
			fmt.Fprintf(&b, " {%s}", strings.Join(members, ","))
		}
		fmt.Fprintln(&b)
		w *= f
	}
	return b.String()
}

// DumpSchedule renders an explicit round schedule — the textual equivalent
// of Figs. 5 (ring) and 6 (k-ring, p=6, k=3).
func DumpSchedule(s *core.Schedule, groupSize int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule over p=%d, %d rounds, %d transfers\n",
		s.P, s.NumRounds(), s.TotalEdges())
	group := func(r int) int {
		if groupSize < 1 {
			return 0
		}
		return r / groupSize
	}
	for t, round := range s.Rounds {
		kind := "intra"
		if groupSize >= 1 && len(round) > 0 && group(round[0].From) != group(round[0].To) {
			kind = "INTER"
		}
		fmt.Fprintf(&b, "round %2d (%s):", t+1, kind)
		for _, e := range round {
			fmt.Fprintf(&b, " %d->%d[b%d]", e.From, e.To, e.Block)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
