// Package trace records the point-to-point operations a collective issues
// — per-rank event logs with virtual timestamps when the underlying
// substrate tracks a clock — and renders them for inspection: Chrome
// trace-viewer JSON, per-rank summaries, and ASCII dumps of tree and ring
// schedules (the paper's Figs. 1–6 as text).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"exacoll/internal/comm"
)

// Kind labels an event.
type Kind string

// Event kinds.
const (
	KindSend    Kind = "send"
	KindRecv    Kind = "recv"
	KindCompute Kind = "compute"
	// KindSpan is a labeled interval (e.g. one collective call recorded by
	// the metrics subsystem's selection telemetry) rather than a single
	// point-to-point operation.
	KindSpan Kind = "span"
)

// Event is one recorded operation.
type Event struct {
	Rank  int
	Kind  Kind
	Peer  int
	Tag   comm.Tag
	Bytes int
	// Time is the rank's virtual clock after the operation (0 on real
	// transports). For spans it is the start time.
	Time float64
	// Dur is the span duration in seconds (0 for point events).
	Dur float64
	// Label names a span (empty for point events).
	Label string
	// Seq is the global record order (not meaningful across ranks on real
	// transports; deterministic on the simulator).
	Seq int
}

// Sink collects events from all ranks of one run.
type Sink struct {
	mu     sync.Mutex
	events []Event
}

// NewSink returns an empty sink.
func NewSink() *Sink { return &Sink{} }

// record appends one event.
func (s *Sink) record(e Event) {
	s.mu.Lock()
	e.Seq = len(s.events)
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// RecordSpan records a labeled interval on one rank's timeline: start and
// dur in seconds (virtual or wall, matching the rest of the sink). It
// satisfies the metrics package's SpanSink, so a metrics.Registry wired
// to a Sink renders every selection decision as a Chrome-trace slice.
func (s *Sink) RecordSpan(rank int, label string, start, dur float64) {
	s.record(Event{Rank: rank, Kind: KindSpan, Peer: -1, Label: label, Time: start, Dur: dur})
}

// Events returns a copy of the recorded events in record order.
func (s *Sink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Wrap returns a comm.Comm that records every operation of c into the
// sink. The wrapper preserves the Clock interface if c implements it.
func (s *Sink) Wrap(c comm.Comm) comm.Comm {
	t := &tracedComm{inner: c, sink: s}
	if _, ok := comm.VirtualClock(c); ok {
		return &tracedClockComm{tracedComm: t}
	}
	return t
}

type tracedComm struct {
	inner comm.Comm
	sink  *Sink
}

func (t *tracedComm) now() float64 {
	if cl, ok := t.inner.(comm.Clock); ok {
		return cl.Now()
	}
	return 0
}

func (t *tracedComm) Rank() int { return t.inner.Rank() }
func (t *tracedComm) Size() int { return t.inner.Size() }

func (t *tracedComm) ChargeCompute(n int) {
	t.inner.ChargeCompute(n)
	t.sink.record(Event{Rank: t.Rank(), Kind: KindCompute, Peer: -1, Bytes: n, Time: t.now()})
}

func (t *tracedComm) Send(to int, tag comm.Tag, buf []byte) error {
	err := t.inner.Send(to, tag, buf)
	if err == nil {
		t.sink.record(Event{Rank: t.Rank(), Kind: KindSend, Peer: to, Tag: tag, Bytes: len(buf), Time: t.now()})
	}
	return err
}

func (t *tracedComm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	n, err := t.inner.Recv(from, tag, buf)
	if err == nil {
		t.sink.record(Event{Rank: t.Rank(), Kind: KindRecv, Peer: from, Tag: tag, Bytes: n, Time: t.now()})
	}
	return n, err
}

func (t *tracedComm) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	req, err := t.inner.Isend(to, tag, buf)
	if err != nil {
		return nil, err
	}
	t.sink.record(Event{Rank: t.Rank(), Kind: KindSend, Peer: to, Tag: tag, Bytes: len(buf), Time: t.now()})
	return req, nil
}

func (t *tracedComm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	req, err := t.inner.Irecv(from, tag, buf)
	if err != nil {
		return nil, err
	}
	return &tracedRecvReq{Request: req, t: t, from: from, tag: tag}, nil
}

// tracedRecvReq records the receive when it completes.
type tracedRecvReq struct {
	comm.Request
	t    *tracedComm
	from int
	tag  comm.Tag
	once sync.Once
}

func (r *tracedRecvReq) Wait() error {
	err := r.Request.Wait()
	if err == nil {
		r.once.Do(func() {
			r.t.sink.record(Event{Rank: r.t.Rank(), Kind: KindRecv, Peer: r.from,
				Tag: r.tag, Bytes: r.Request.Len(), Time: r.t.now()})
		})
	}
	return err
}

// Test implements comm.Tester when the wrapped request does, recording the
// receive event once on successful completion (same one-shot as Wait).
func (r *tracedRecvReq) Test() (bool, error) {
	done, err, ok := comm.TryTest(r.Request)
	if !ok || !done {
		return false, nil
	}
	if err == nil {
		r.once.Do(func() {
			r.t.sink.record(Event{Rank: r.t.Rank(), Kind: KindRecv, Peer: r.from,
				Tag: r.tag, Bytes: r.Request.Len(), Time: r.t.now()})
		})
	}
	return true, err
}

// tracedClockComm re-exposes the Clock interface.
type tracedClockComm struct {
	*tracedComm
}

// Now implements comm.Clock.
func (t *tracedClockComm) Now() float64 { return t.now() }

// Summary aggregates a sink per rank.
type Summary struct {
	Rank      int
	Sends     int
	Recvs     int
	BytesSent int
}

// Summarize returns per-rank totals sorted by rank.
func (s *Sink) Summarize() []Summary {
	byRank := map[int]*Summary{}
	for _, e := range s.Events() {
		sum, ok := byRank[e.Rank]
		if !ok {
			sum = &Summary{Rank: e.Rank}
			byRank[e.Rank] = sum
		}
		switch e.Kind {
		case KindSend:
			sum.Sends++
			sum.BytesSent += e.Bytes
		case KindRecv:
			sum.Recvs++
		}
	}
	out := make([]Summary, 0, len(byRank))
	for _, sum := range byRank {
		out = append(out, *sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// WriteChromeTrace emits the sink's events as Chrome trace-viewer JSON.
func (s *Sink) WriteChromeTrace(w io.Writer) error {
	return WriteChromeEvents(w, s.Events())
}

// WriteChromeEvents emits events as Chrome trace-viewer JSON (open in
// chrome://tracing or Perfetto): one "thread" per rank, spans (KindSpan)
// as complete events and everything else as instants, timestamped in
// microseconds. Shared by the sink and the flight recorder's merged
// cross-rank timeline (internal/flight), which synthesizes Events in any
// time base it likes.
func WriteChromeEvents(w io.Writer, events []Event) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, e := range events {
		comma := ","
		if i == len(events)-1 {
			comma = ""
		}
		if e.Kind == KindSpan {
			// Spans render as complete events ("X"): a slice with a
			// duration on the rank's timeline.
			if _, err := fmt.Fprintf(w,
				"  {\"name\": %q, \"ph\": \"X\", \"pid\": 0, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}%s\n",
				e.Label, e.Rank, e.Time*1e6, e.Dur*1e6, comma); err != nil {
				return err
			}
			continue
		}
		name := string(e.Kind)
		if e.Peer >= 0 {
			name = fmt.Sprintf("%s peer=%d tag=%d", e.Kind, e.Peer, e.Tag)
		}
		if _, err := fmt.Fprintf(w,
			"  {\"name\": %q, \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \"tid\": %d, \"ts\": %.3f, \"args\": {\"bytes\": %d}}%s\n",
			name, e.Rank, e.Time*1e6, e.Bytes, comma); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// FormatEvents renders events as an aligned text log.
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		if e.Kind == KindSpan {
			fmt.Fprintf(&b, "%4d %10.3fus rank %3d %-7s %-26s %7.3fus\n",
				e.Seq, e.Time*1e6, e.Rank, e.Kind, e.Label, e.Dur*1e6)
			continue
		}
		if e.Peer >= 0 {
			fmt.Fprintf(&b, "%4d %10.3fus rank %3d %-7s peer %3d tag %6d %8dB\n",
				e.Seq, e.Time*1e6, e.Rank, e.Kind, e.Peer, e.Tag, e.Bytes)
		} else {
			fmt.Fprintf(&b, "%4d %10.3fus rank %3d %-7s %26s %8dB\n",
				e.Seq, e.Time*1e6, e.Rank, e.Kind, "", e.Bytes)
		}
	}
	return b.String()
}
