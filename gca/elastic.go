package gca

// Elastic membership: worlds over TCP that grow, shrink, and re-admit
// ranks across their lifetime (see internal/elastic). The elastic
// transport keeps one persistent rendezvous anchor on rank 0; each
// membership is an epoch, and every change forms a brand-new mesh whose
// predecessor is fenced — its entire tag space purged — so stragglers
// from an old membership can never corrupt a new one.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/elastic"
	"exacoll/internal/ft"
	"exacoll/internal/transport/tcp"
)

// ErrEjected reports that this rank lost its place in the elastic world:
// the survivors elected it to take over the dead anchor's duty, but the
// anchor address is still owned — the old anchor is alive on the other
// side of a partition, and the world has moved on (or will) without this
// rank. The only way back is a fresh JoinElastic.
var ErrEjected = errors.New("gca: ejected from the world; rejoin via JoinElastic")

// promoteJoinCap is the admission-queue depth a promoted anchor accepts —
// the original joinCap was the dead anchor's local knowledge, so the
// promoted one starts with a sensible default.
const promoteJoinCap = 16

// Retryable reports whether an error from Grow, Shrink, or JoinElastic is
// transient: the membership change may be retried and the retry can
// converge (rendezvous bounces, aborted transitions, races with
// concurrent membership changes, timed-out formations — a formation that
// timed out waiting for a member left the old epoch intact, and that
// member is failing its own attempt, so both sides retry from agreement).
// ErrEjected is never retryable — the rank must rejoin from outside.
func Retryable(err error) bool {
	if errors.Is(err, ErrEjected) {
		return false
	}
	return tcp.Retryable(err) || errors.Is(err, ft.ErrAborted) || errors.Is(err, comm.ErrTimeout)
}

// ElasticComm is a communicator whose world can change membership: pass
// it to NewSession like any other Comm, and drive membership changes with
// Session.Grow / Session.Shrink. Close it when the process leaves the
// world for good.
type ElasticComm = elastic.Member

// ConnectElastic joins an elastic multi-process world over TCP — the
// growable counterpart of ConnectTCP. Rank 0 hosts the persistent
// rendezvous anchor at addr (accepting up to joinCap queued join requests
// at any time) and must remain rank 0 of every later membership; other
// ranks dial it. Provide the same addr everywhere.
func ConnectElastic(rank, size int, addr string, joinCap int, timeout time.Duration) (*ElasticComm, error) {
	if rank == 0 {
		return elastic.Host(addr, size, joinCap, tcp.Options{Timeout: timeout})
	}
	return elastic.Dial(addr, rank, size, tcp.Options{Timeout: timeout})
}

// JoinElastic enters an existing elastic world from outside: it parks a
// join request at the anchor and blocks (up to timeout) until the
// incumbents run Session.Grow, then lands as a full member of the grown
// world. Build a Session over the returned communicator with the same
// options the incumbents use; a process whose earlier incarnation died
// rejoins the same way, under a fresh rank and a fresh tag space.
func JoinElastic(addr string, timeout time.Duration) (*ElasticComm, error) {
	return elastic.Join(addr, tcp.Options{Timeout: timeout})
}

// elasticMemberOf walks the session's wrapper chain (the Unwrap
// convention) down to the elastic member, composing the rank translation
// of every SubComm crossed on the way — after one or more Shrinks the
// base communicator is a stack of SubComms over the member. It returns
// the member and a function mapping base-communicator ranks to
// member-level ranks (nil, nil when no elastic transport is underneath).
func elasticMemberOf(c comm.Comm) (*elastic.Member, func(int) int) {
	xlate := func(r int) int { return r }
	for cur := c; cur != nil; {
		switch v := cur.(type) {
		case *elastic.Member:
			return v, xlate
		case *comm.SubComm:
			sc, prev := v, xlate
			xlate = func(r int) int { return sc.Parent(prev(r)) }
		}
		u, ok := cur.(interface{ Unwrap() comm.Comm })
		if !ok {
			return nil, nil
		}
		cur = u.Unwrap()
	}
	return nil, nil
}

// ElasticCommOf returns the elastic communicator underneath a session's
// transport, walking the wrapper chain like Grow does — nil when the
// session is not on an elastic transport. Useful for lifecycle control
// (PendingJoins, Epoch, Close) when only the session is at hand.
func ElasticCommOf(s *Session) *ElasticComm {
	m, _ := elasticMemberOf(s.base)
	return m
}

// growCountTag returns the tag used for the grow-plan broadcast during
// Grow: the first tag of the given (virgin) collective epoch window.
func growCountTag(epoch int64) comm.Tag {
	lo, _ := ft.EpochWindow(epoch)
	return lo
}

// growPlan is the leader's journaled transition decision, broadcast to
// every survivor so admission and regroup agree on geometry and epoch:
// target(8) joiners(4).
const growPlanSize = 12

// growAborted in the plan's joiner field tells survivors the leader
// abandoned the transition before regroup — they fail fast with a
// retryable error instead of waiting out their op timeout on a formation
// that will never run.
const growAborted = ^uint32(0)

// Grow admits every join request queued at the anchor and returns a new
// session over the grown world. Every surviving rank must call Grow
// collectively (like Shrink); joiners are concurrently completing their
// JoinElastic calls and build their own sessions afterwards. The protocol
// — journaled and resumable, every step leaving the old epoch intact:
//
//  1. Agree on the survivor set (the same ft agreement Shrink runs), so a
//     membership change and a rank death cannot split the world. If the
//     anchor host (member rank 0) is not among the survivors, the lowest
//     surviving member rank promotes itself: it binds the anchor address
//     with state seeded from its own epoch and takes over rendezvous duty
//     (failing that — the address is still owned, so the old anchor is
//     partitioned, not dead — it returns ErrEjected and must rejoin).
//  2. The leader opens (or resumes) the journaled transition: target
//     epoch and joiner count are fixed once per transition, tickets are
//     issued for exactly that geometry, and the plan is broadcast to the
//     survivors over a virgin tag window. A retry after a failure here
//     resumes the same transition — already-ticketed joiners stay valid.
//  3. Everyone re-rendezvouses into the target epoch's mesh — survivors
//     keep their relative order and occupy ranks 0..s-1 (the leader is
//     rank 0), joiners take ranks s..s+n-1 — and the old mesh is fenced:
//     every connection closed, every tag purged. A failed formation
//     aborts the target epoch (bouncing everything parked there with a
//     retryable status) so the next attempt starts cleanly later.
//
// The new session starts from a virgin tag space (the transport is a new
// mesh), carrying over the session's options. With no queued joiners Grow
// still regroups, which compacts out any dead ranks — a Shrink that also
// re-keys the transport epoch. On a non-nil error the old session remains
// usable and, when Retryable reports the error transient, calling Grow
// again resumes or restarts the transition. Requires WithFaultTolerance
// and an elastic transport (ConnectElastic / JoinElastic).
func (s *Session) Grow() (*Session, error) {
	if s.ft == nil {
		return nil, fmt.Errorf("gca: Grow requires WithFaultTolerance")
	}
	member, toMember := elasticMemberOf(s.base)
	if member == nil {
		return nil, fmt.Errorf("gca: Grow requires an elastic transport (ConnectElastic/JoinElastic)")
	}
	survivors, epoch, err := s.ft.Expand()
	if err != nil {
		return nil, err
	}
	if toMember(survivors[0]) != 0 && !member.IsAnchor() {
		// The anchor host is dead. Survivor order is preserved by every
		// sub-communicator, so survivors[0] is the lowest surviving member
		// rank everywhere — the collective elects it without a message.
		if survivors[0] == s.base.Rank() {
			if perr := member.Promote(promoteJoinCap); perr != nil {
				return nil, fmt.Errorf("%w: %w", ErrEjected, perr)
			}
		}
	}
	sub, err := comm.NewSub(s.base, survivors)
	if err != nil {
		return nil, err
	}

	// The transition plan (target epoch, joiner count) is anchor-local
	// knowledge; a linear broadcast over the survivor sub-communicator
	// makes it collective. The virgin epoch window cannot hold stragglers,
	// and the whole window dies with the old mesh moments later.
	tag := growCountTag(epoch)
	var plan [growPlanSize]byte
	if sub.Rank() == 0 {
		target, joiners, err := member.BeginGrow(sub.Size())
		if err != nil {
			return nil, err
		}
		admitted, aerr := member.AdmitJoiners(joiners, sub.Size(), sub.Size()+joiners)
		if aerr != nil || admitted != joiners {
			// An admission step failed or a joiner hung up after its ticket
			// was cut: the issued tickets name a geometry the mesh can no
			// longer form. Abort the transition — ticket holders bounce
			// retryably — tell the survivors (best effort: a survivor the
			// plan cannot reach is already failing on its own), and let the
			// caller retry from the top.
			member.AbortGrow()
			binary.LittleEndian.PutUint64(plan[0:], 0)
			binary.LittleEndian.PutUint32(plan[8:], growAborted)
			for i := 1; i < sub.Size(); i++ {
				sub.Send(i, tag, plan[:])
			}
			if aerr != nil {
				return nil, fmt.Errorf("gca: grow admission: %w", aerr)
			}
			return nil, fmt.Errorf("gca: admitted %d of %d joiners; grow aborted: %w",
				admitted, joiners, tcp.ErrBounced)
		}
		binary.LittleEndian.PutUint64(plan[0:], target)
		binary.LittleEndian.PutUint32(plan[8:], uint32(joiners))
		for i := 1; i < sub.Size(); i++ {
			if err := sub.Send(i, tag, plan[:]); err != nil {
				return nil, fmt.Errorf("gca: grow plan broadcast: %w", err)
			}
		}
	} else {
		if _, err := sub.Recv(0, tag, plan[:]); err != nil {
			return nil, fmt.Errorf("gca: grow plan broadcast: %w", err)
		}
	}
	target := binary.LittleEndian.Uint64(plan[0:])
	nj := binary.LittleEndian.Uint32(plan[8:])
	if nj == growAborted {
		return nil, fmt.Errorf("gca: grow aborted by leader: %w", tcp.ErrBounced)
	}
	joiners := int(nj)

	if err := member.RegroupTo(sub.Rank(), sub.Size()+joiners, target); err != nil {
		return nil, err
	}
	cfg := s.cfg
	cfg.epoch, cfg.seqBase = 0, 0 // fresh mesh, virgin tag space
	return newSession(member, cfg), nil
}
