package gca

// Elastic membership: worlds over TCP that grow, shrink, and re-admit
// ranks across their lifetime (see internal/elastic). The elastic
// transport keeps one persistent rendezvous anchor on rank 0; each
// membership is an epoch, and every change forms a brand-new mesh whose
// predecessor is fenced — its entire tag space purged — so stragglers
// from an old membership can never corrupt a new one.

import (
	"encoding/binary"
	"fmt"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/elastic"
	"exacoll/internal/ft"
	"exacoll/internal/transport/tcp"
)

// ElasticComm is a communicator whose world can change membership: pass
// it to NewSession like any other Comm, and drive membership changes with
// Session.Grow / Session.Shrink. Close it when the process leaves the
// world for good.
type ElasticComm = elastic.Member

// ConnectElastic joins an elastic multi-process world over TCP — the
// growable counterpart of ConnectTCP. Rank 0 hosts the persistent
// rendezvous anchor at addr (accepting up to joinCap queued join requests
// at any time) and must remain rank 0 of every later membership; other
// ranks dial it. Provide the same addr everywhere.
func ConnectElastic(rank, size int, addr string, joinCap int, timeout time.Duration) (*ElasticComm, error) {
	if rank == 0 {
		return elastic.Host(addr, size, joinCap, tcp.Options{Timeout: timeout})
	}
	return elastic.Dial(addr, rank, size, tcp.Options{Timeout: timeout})
}

// JoinElastic enters an existing elastic world from outside: it parks a
// join request at the anchor and blocks (up to timeout) until the
// incumbents run Session.Grow, then lands as a full member of the grown
// world. Build a Session over the returned communicator with the same
// options the incumbents use; a process whose earlier incarnation died
// rejoins the same way, under a fresh rank and a fresh tag space.
func JoinElastic(addr string, timeout time.Duration) (*ElasticComm, error) {
	return elastic.Join(addr, tcp.Options{Timeout: timeout})
}

// elasticMemberOf walks the session's wrapper chain (the Unwrap
// convention) down to the elastic member, composing the rank translation
// of every SubComm crossed on the way — after one or more Shrinks the
// base communicator is a stack of SubComms over the member. It returns
// the member and a function mapping base-communicator ranks to
// member-level ranks (nil, nil when no elastic transport is underneath).
func elasticMemberOf(c comm.Comm) (*elastic.Member, func(int) int) {
	xlate := func(r int) int { return r }
	for cur := c; cur != nil; {
		switch v := cur.(type) {
		case *elastic.Member:
			return v, xlate
		case *comm.SubComm:
			sc, prev := v, xlate
			xlate = func(r int) int { return sc.Parent(prev(r)) }
		}
		u, ok := cur.(interface{ Unwrap() comm.Comm })
		if !ok {
			return nil, nil
		}
		cur = u.Unwrap()
	}
	return nil, nil
}

// ElasticCommOf returns the elastic communicator underneath a session's
// transport, walking the wrapper chain like Grow does — nil when the
// session is not on an elastic transport. Useful for lifecycle control
// (PendingJoins, Epoch, Close) when only the session is at hand.
func ElasticCommOf(s *Session) *ElasticComm {
	m, _ := elasticMemberOf(s.base)
	return m
}

// growCountTag returns the tag used for the joiner-count broadcast during
// Grow: the first tag of the given (virgin) collective epoch window.
func growCountTag(epoch int64) comm.Tag {
	lo, _ := ft.EpochWindow(epoch)
	return lo
}

// Grow admits every join request queued at the anchor and returns a new
// session over the grown world. Every surviving rank must call Grow
// collectively (like Shrink); joiners are concurrently completing their
// JoinElastic calls and build their own sessions afterwards. The protocol:
//
//  1. Agree on the survivor set (the same ft agreement Shrink runs), so a
//     membership change and a rank death cannot split the world. The
//     anchor host (member rank 0) must be among the survivors.
//  2. The anchor broadcasts the number of queued joiners to the survivors
//     and issues each joiner a ticket naming its rank and epoch.
//  3. Everyone re-rendezvouses into the next epoch's mesh — survivors keep
//     their relative order and occupy ranks 0..s-1, joiners take ranks
//     s..s+n-1 — and the old mesh is fenced: every connection closed,
//     every tag purged.
//
// The new session starts from a virgin tag space (the transport is a new
// mesh), carrying over the session's options. With no queued joiners Grow
// still regroups, which compacts out any dead ranks — a Shrink that also
// re-keys the transport epoch. On error the session and its communicator
// must be abandoned. Requires WithFaultTolerance and an elastic transport
// (ConnectElastic / JoinElastic).
func (s *Session) Grow() (*Session, error) {
	if s.ft == nil {
		return nil, fmt.Errorf("gca: Grow requires WithFaultTolerance")
	}
	member, toMember := elasticMemberOf(s.base)
	if member == nil {
		return nil, fmt.Errorf("gca: Grow requires an elastic transport (ConnectElastic/JoinElastic)")
	}
	survivors, epoch, err := s.ft.Expand()
	if err != nil {
		return nil, err
	}
	if toMember(survivors[0]) != 0 {
		return nil, fmt.Errorf("gca: the anchor host (member rank 0) did not survive; the world cannot grow")
	}
	sub, err := comm.NewSub(s.base, survivors)
	if err != nil {
		return nil, err
	}

	// The joiner count is anchor-local knowledge; a linear broadcast over
	// the survivor sub-communicator makes it collective. The virgin epoch
	// window cannot hold stragglers, and the whole window dies with the
	// old mesh moments later.
	tag := growCountTag(epoch)
	var cnt [4]byte
	if sub.Rank() == 0 {
		n := member.PendingJoins()
		admitted, err := member.AdmitJoiners(n, sub.Size(), sub.Size()+n)
		if err != nil {
			return nil, err
		}
		if admitted != n {
			// A joiner hung up after its ticket was cut: the issued tickets
			// name a size the mesh can no longer reach. The regroup below
			// will time out on every participant; callers must rebuild.
			return nil, fmt.Errorf("gca: admitted %d of %d joiners; grow aborted", admitted, n)
		}
		binary.LittleEndian.PutUint32(cnt[:], uint32(n))
		for i := 1; i < sub.Size(); i++ {
			if err := sub.Send(i, tag, cnt[:]); err != nil {
				return nil, fmt.Errorf("gca: grow count broadcast: %w", err)
			}
		}
	} else {
		if _, err := sub.Recv(0, tag, cnt[:]); err != nil {
			return nil, fmt.Errorf("gca: grow count broadcast: %w", err)
		}
	}
	joiners := int(binary.LittleEndian.Uint32(cnt[:]))

	if err := member.Regroup(sub.Rank(), sub.Size()+joiners); err != nil {
		return nil, err
	}
	cfg := s.cfg
	cfg.epoch, cfg.seqBase = 0, 0 // fresh mesh, virgin tag space
	return newSession(member, cfg), nil
}
