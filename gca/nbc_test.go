package gca

import (
	"bytes"
	"fmt"
	"testing"
)

// TestNonblockingMatchesBlocking checks each public I<op> against its
// blocking counterpart through the facade, bit for bit.
func TestNonblockingMatchesBlocking(t *testing.T) {
	const p, elems = 6, 32
	n := 8 * elems

	payload := func(rank int) []byte {
		buf := make([]byte, n)
		for i := 0; i < elems; i++ {
			copy(buf[8*i:], encodeF64(0.1*float64(rank+1)+0.7*float64(i)))
		}
		return buf
	}

	type result struct {
		bcast, reduce, allreduce, allgather, rs []byte
	}
	run := func(nonblocking bool) []result {
		out := make([]result, p)
		w := NewLocalWorld(p)
		defer w.Close()
		err := w.Run(func(c Comm) error {
			s := NewSession(c, OnMachine(Frontier()))
			r := result{
				bcast:     make([]byte, n),
				allreduce: make([]byte, n),
				allgather: make([]byte, n*p),
				rs:        make([]byte, s.ReduceScatterBlockSize(n, Float64)),
			}
			if s.Rank() == 2 {
				copy(r.bcast, payload(2))
			}
			if s.Rank() == 0 {
				r.reduce = make([]byte, n)
			}
			mine := payload(s.Rank())
			if nonblocking {
				var reqs []CollRequest
				for _, start := range []func() (CollRequest, error){
					func() (CollRequest, error) { return s.IBcast(r.bcast, 2) },
					func() (CollRequest, error) { return s.IReduce(mine, r.reduce, Sum, Float64, 0) },
					func() (CollRequest, error) { return s.IAllreduce(mine, r.allreduce, Sum, Float64) },
					func() (CollRequest, error) { return s.IAllgather(mine, r.allgather) },
					func() (CollRequest, error) { return s.IReduceScatter(mine, r.rs, Sum, Float64) },
				} {
					req, err := start()
					if err != nil {
						return err
					}
					reqs = append(reqs, req)
				}
				// All five collectives are now outstanding on one
				// communicator; drain them together.
				if err := WaitAllColl(reqs...); err != nil {
					return err
				}
			} else {
				if err := s.Bcast(r.bcast, 2); err != nil {
					return err
				}
				if err := s.Reduce(mine, r.reduce, Sum, Float64, 0); err != nil {
					return err
				}
				if err := s.Allreduce(mine, r.allreduce, Sum, Float64); err != nil {
					return err
				}
				if err := s.Allgather(mine, r.allgather); err != nil {
					return err
				}
				if err := s.ReduceScatter(mine, r.rs, Sum, Float64); err != nil {
					return err
				}
			}
			out[s.Rank()] = r
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	want := run(false)
	got := run(true)
	for r := 0; r < p; r++ {
		for _, cmp := range []struct {
			name       string
			want, have []byte
		}{
			{"bcast", want[r].bcast, got[r].bcast},
			{"reduce", want[r].reduce, got[r].reduce},
			{"allreduce", want[r].allreduce, got[r].allreduce},
			{"allgather", want[r].allgather, got[r].allgather},
			{"reduce-scatter", want[r].rs, got[r].rs},
		} {
			if !bytes.Equal(cmp.want, cmp.have) {
				t.Errorf("rank %d %s: nonblocking differs from blocking", r, cmp.name)
			}
		}
	}
}

// TestNonblockingOverlapAndTest drives a collective to completion with
// Test polling while doing "compute", and checks the metrics registry saw
// the nonblocking calls.
func TestNonblockingOverlapAndTest(t *testing.T) {
	const p = 4
	reg := NewMetrics()
	w := NewLocalWorld(p)
	defer w.Close()
	err := w.Run(func(c Comm) error {
		s := NewSession(c, OnMachine(Frontier()), WithMetrics(reg))
		sendbuf := encodeF64(float64(s.Rank() + 1))
		recvbuf := make([]byte, 8)
		req, err := s.IAllreduce(sendbuf, recvbuf, Sum, Float64)
		if err != nil {
			return err
		}
		// Overlapped "compute": poll between useful work.
		acc := 0.0
		for {
			acc += 1.0
			done, err := req.Test()
			if err != nil {
				return err
			}
			if done {
				break
			}
		}
		if got := decodeF64(recvbuf); got != 10 {
			return fmt.Errorf("rank %d: iallreduce = %v, want 10", s.Rank(), got)
		}
		_ = acc
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := reg.Snapshot().Totals()
	if tot.NBCStarted != p {
		t.Errorf("NBCStarted = %d, want %d", tot.NBCStarted, p)
	}
	if tot.NBCInflight != 0 {
		t.Errorf("NBCInflight = %d, want 0", tot.NBCInflight)
	}
	found := false
	for _, d := range reg.Snapshot().Decisions {
		if d.Op == "MPI_Iallreduce" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no MPI_Iallreduce decision recorded")
	}
}
