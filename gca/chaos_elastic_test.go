package gca_test

// Chaos suite for the elastic lifecycle: a wire- and protocol-level fault
// sweep over the p=4 -> grow 8 -> kill -> shrink 7 -> rejoin 8 lifecycle,
// asserting the invariant the resumable-transition design promises —
// every injected failure terminates bounded, as either a bit-exact
// healthy epoch or a clean retryable error, never a hang or a corrupted
// world — plus dedicated scenarios for the cascades a single-shot sweep
// cannot express: split-world convergence after a post-reply fault,
// anchor promotion after rank-0 death, and probabilistic wire chaos
// through the seeded connection-fault injector.

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exacoll/gca"
	"exacoll/internal/elastic"
	"exacoll/internal/transport/faulty"
	"exacoll/internal/transport/tcp"
)

// errChaos is the injected fault. It wraps tcp.ErrBounced so the
// classification chain (tcp.Retryable -> gca.Retryable) treats a
// deliberately failed step exactly like a protocol-level bounce.
var errChaos = fmt.Errorf("chaos: injected fault: %w", tcp.ErrBounced)

// faultSpec names one protocol boundary of one lifecycle phase.
type faultSpec struct {
	point    string
	epoch    uint64
	anyEpoch bool // join.* steps carry no meaningful epoch
}

func (f faultSpec) name() string {
	if f.anyEpoch {
		return f.point
	}
	return fmt.Sprintf("%s@%d", f.point, f.epoch)
}

// singleShot arms a hook that fails the spec's boundary exactly once.
// The returned flag reports whether the fault actually fired — a spec
// that never fires names a boundary the protocol no longer crosses, and
// the sweep must fail loudly rather than silently lose coverage.
func (f faultSpec) singleShot() (tcp.FaultHook, *atomic.Bool) {
	fired := &atomic.Bool{}
	hook := func(s tcp.Step) error {
		if s.Point != f.point || (!f.anyEpoch && s.Epoch != f.epoch) {
			return nil
		}
		if fired.CompareAndSwap(false, true) {
			return errChaos
		}
		return nil
	}
	return hook, fired
}

// elasticChaosSweep places one single-shot fault at every protocol
// boundary the lifecycle crosses before an address list is committed.
// (Post-reply boundaries during a grow — rv.status/rv.addrs/rv.mesh.* —
// can strand the anchor in the new epoch while members fail; that
// cascade is deliberate design territory and has its own convergence
// test below rather than a sweep slot. At founding they are swept, since
// re-founding recovers from anything.)
var elasticChaosSweep = []faultSpec{
	// Founding formation, epoch 0. There is no old epoch to fall back to,
	// so recovery is re-founding from scratch (the harness bulldozer).
	{point: "rv.dial", epoch: 0},
	{point: "rv.hello", epoch: 0},
	{point: "rv.status", epoch: 0},
	{point: "rv.addrs", epoch: 0},
	{point: "rv.mesh.accept", epoch: 0},
	{point: "rv.mesh.dial", epoch: 0},
	{point: "anchor.rv.begin", epoch: 0},
	{point: "anchor.rv.reply", epoch: 0},
	// Grow 4 -> 8, epoch 1: pre-reply boundaries, where every rank fails
	// together, the old epoch stays intact, and a collective retry of
	// Grow resumes or restarts the journaled transition.
	{point: "rv.dial", epoch: 1},
	{point: "rv.hello", epoch: 1},
	{point: "anchor.rv.begin", epoch: 1},
	{point: "anchor.rv.reply", epoch: 1},
	{point: "anchor.admit", epoch: 1},
	// Join admission protocol (epoch-agnostic: RequestJoin predates any
	// epoch assignment). These are absorbed inside the joiner's own retry
	// loop; the sweep proves the grow still converges around them.
	{point: "join.dial", anyEpoch: true},
	{point: "join.hello", anyEpoch: true},
	{point: "join.ticket", anyEpoch: true},
	// Rejoin grow 7 -> 8, epoch 2: the same machinery after a death and a
	// shrink, where the survivor set crossed a SubComm.
	{point: "rv.hello", epoch: 2},
	{point: "anchor.rv.begin", epoch: 2},
}

// elasticChaosShort is the -short subset: one spec per phase/kind.
var elasticChaosShort = []faultSpec{
	{point: "rv.hello", epoch: 0},
	{point: "anchor.rv.reply", epoch: 0},
	{point: "anchor.admit", epoch: 1},
	{point: "join.ticket", anyEpoch: true},
	{point: "rv.hello", epoch: 2},
}

// TestChaosLifecycleSweep drives the full elastic lifecycle once per
// fault spec. Apart from the founding bulldozer, the harness retries only
// what a production controller would: collective Grow retries on
// retryable errors, nothing else.
func TestChaosLifecycleSweep(t *testing.T) {
	specs := elasticChaosSweep
	if testing.Short() {
		specs = elasticChaosShort
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.name(), func(t *testing.T) { runChaosLifecycle(t, spec) })
	}
}

func runChaosLifecycle(t *testing.T, spec faultSpec) {
	hook, fired := spec.singleShot()
	addr := elasticFreeAddr(t)
	topts := tcp.Options{Timeout: 2 * time.Second, Hook: hook}

	var mu sync.Mutex
	var members []*gca.ElasticComm
	track := func(m *gca.ElasticComm) {
		mu.Lock()
		members = append(members, m)
		mu.Unlock()
	}
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, m := range members {
			m.Close() // idempotent; fenced incarnations are already gone
		}
	}()

	// Found p=4. A founding fault has no prior epoch to preserve, so the
	// recovery story is the bluntest one: close every partial member and
	// re-found from scratch. The single-shot fault is spent on the first
	// attempt, so the bulldozer converges by the second round; the loop
	// bound is the hang detector.
	var comms []*gca.ElasticComm
	for attempt := 0; ; attempt++ {
		if attempt >= 6 {
			t.Fatalf("founding did not converge in %d attempts", attempt)
		}
		cs := make([]*gca.ElasticComm, 4)
		errs := make([]error, 4)
		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if r == 0 {
					cs[r], errs[r] = elastic.Host(addr, 4, 16, topts)
				} else {
					cs[r], errs[r] = elastic.Dial(addr, r, 4, topts)
				}
			}(r)
		}
		wg.Wait()
		failed := 0
		for _, err := range errs {
			if err != nil {
				failed++
			}
		}
		if failed == 0 {
			comms = cs
			for _, c := range cs {
				track(c)
			}
			break
		}
		// A partially-formed world (the anchor can finish while a member
		// faults mid-mesh) is torn down whole — survivors of a failed
		// founding are not worth salvaging.
		for _, c := range cs {
			if c != nil {
				c.Close()
			}
		}
	}
	anchor := comms[0]

	sessions := make([]*gca.Session, 4)
	for r := range sessions {
		sessions[r] = gca.NewSession(comms[r], elasticOpts()...)
	}
	forEachSession(t, sessions, "p=4 allreduce", quickAllreduce)

	// Grow 4 -> 8 through whatever the spec throws at it.
	joined := startChaosJoins(t, addr, hook, 4, track)
	sessions8 := growUntil(t, sessions, joined, 8, anchor)
	forEachSession(t, sessions8, "p=8 allreduce", quickAllreduce)

	// Kill rank 6 without ceremony; wait until every survivor's failure
	// detector has seen the death, then shrink collectively.
	gca.ElasticCommOf(sessions8[6]).Close()
	for i, s := range sessions8 {
		if i != 6 {
			waitFailure(t, gca.ElasticCommOf(s), 6)
		}
	}
	sessions7 := make([]*gca.Session, 7)
	{
		var smu sync.Mutex
		var wg sync.WaitGroup
		errs := make([]error, 8)
		for r, s := range sessions8 {
			if r == 6 {
				continue
			}
			wg.Add(1)
			go func(r int, s *gca.Session) {
				defer wg.Done()
				ns, err := s.Shrink()
				if err != nil {
					errs[r] = err
					return
				}
				smu.Lock()
				sessions7[ns.Rank()] = ns
				smu.Unlock()
			}(r, s)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("shrink rank %d: %v", r, err)
			}
		}
	}
	forEachSession(t, sessions7, "p=7 allreduce", quickAllreduce)

	// Rejoin to 8: the epoch-2 specs fire here (aborted transitions burn
	// epochs, so with an epoch-1 fault the rejoin forms at 3 or later —
	// the epoch-2 specs run their earlier phases clean by construction).
	rejoined := startChaosJoins(t, addr, hook, 1, track)
	sessionsFinal := growUntil(t, sessions7, rejoined, 8, anchor)

	// The final world must be bit-exact across every Table I collective.
	forEachSession(t, sessionsFinal, "final p=8 collectives", verifyCollectives)
	if anchor.Epoch() < 2 {
		t.Fatalf("final epoch = %d, want >= 2 (two growths happened)", anchor.Epoch())
	}
	if !fired.Load() {
		t.Fatalf("fault %s never fired: the sweep names a boundary the protocol no longer crosses", spec.name())
	}
}

// quickAllreduce is the cheap per-membership health probe the sweep runs
// between phases (the full Table I verification runs once, at the end).
func quickAllreduce(s *gca.Session) error {
	total := float64(s.Size()*(s.Size()+1)) / 2
	got, err := s.AllreduceFloat64([]float64{float64(s.Rank() + 1)}, gca.Sum)
	if err != nil {
		return err
	}
	if got[0] != total {
		return fmt.Errorf("allreduce = %v, want %v", got[0], total)
	}
	return nil
}

// startChaosJoins launches n outsiders that enter through the retrying
// admission path, each carrying the chaos hook so join-side boundaries
// can fault. Joiners land on the channel as their formations complete.
func startChaosJoins(t *testing.T, addr string, hook tcp.FaultHook, n int, track func(*gca.ElasticComm)) chan *gca.ElasticComm {
	t.Helper()
	joined := make(chan *gca.ElasticComm, n)
	for i := 0; i < n; i++ {
		go func() {
			m, err := elastic.Join(addr, tcp.Options{Timeout: 45 * time.Second, Hook: hook})
			if err != nil {
				t.Errorf("join: %v", err)
				joined <- nil
				return
			}
			track(m)
			joined <- m
		}()
	}
	return joined
}

// waitPendingAtLeast blocks until the anchor has n join requests queued —
// bounced joiners re-request with backoff, so after an aborted transition
// the queue refills rather than being instantly ready.
func waitPendingAtLeast(t *testing.T, anchor *gca.ElasticComm, n int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for anchor.PendingJoins() < n {
		if time.Now().After(deadline) {
			t.Fatalf("pending joins = %d, want >= %d", anchor.PendingJoins(), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// growUntil runs collective Grow rounds until the world reaches want
// ranks, asserting the sweep invariant along the way: a failed round must
// fail on every incumbent with a retryable error (anything else is a
// split world or a hang — the bugs this suite exists to catch), and a
// successful round that landed fewer joiners than hoped just grows again.
func growUntil(t *testing.T, cur []*gca.Session, joined chan *gca.ElasticComm, want int, anchor *gca.ElasticComm) []*gca.Session {
	t.Helper()
	for round := 0; round < 12; round++ {
		if need := want - len(cur); need > 0 {
			waitPendingAtLeast(t, anchor, need)
		}
		res := make([]*gca.Session, want)
		errs := make([]error, len(cur))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i, s := range cur {
			wg.Add(1)
			go func(i int, s *gca.Session) {
				defer wg.Done()
				ns, err := s.Grow()
				if err != nil {
					errs[i] = err
					return
				}
				mu.Lock()
				res[ns.Rank()] = ns
				mu.Unlock()
			}(i, s)
		}
		wg.Wait()
		failed := 0
		for _, err := range errs {
			if err != nil {
				failed++
			}
		}
		if failed == len(cur) {
			for i, err := range errs {
				if !gca.Retryable(err) {
					t.Fatalf("grow round %d rank %d: non-retryable %v", round, i, err)
				}
			}
			continue // old epoch intact; retry the transition
		}
		if failed > 0 {
			t.Fatalf("grow round %d split: %d of %d incumbents failed: %v", round, failed, len(cur), errs)
		}
		var newSize int
		for _, s := range res {
			if s != nil {
				newSize = s.Size()
				break
			}
		}
		next := make([]*gca.Session, newSize)
		for _, s := range res {
			if s != nil {
				next[s.Rank()] = s
			}
		}
		for k := 0; k < newSize-len(cur); k++ {
			m := <-joined
			if m == nil {
				t.FailNow() // the join goroutine already reported why
			}
			next[m.Rank()] = gca.NewSession(m, elasticOpts()...)
		}
		for r, s := range next {
			if s == nil {
				t.Fatalf("grow round %d: no session landed at rank %d", round, r)
			}
		}
		if newSize == want {
			return next
		}
		cur = next
	}
	t.Fatalf("grow did not reach %d ranks in 12 rounds", want)
	return nil
}

// waitFailure blocks until m's failure detector reports rank dead.
func waitFailure(t *testing.T, m *gca.ElasticComm, rank int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, f := range m.Failed() {
			if f == rank {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank %d death never detected (failed = %v)", rank, m.Failed())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosSplitWorldConverges exercises the one cascade the sweep
// excludes: a fault after the anchor committed the new epoch. The world
// is p=2 plus one joiner; the joiner faults its mesh dial to rank 1 (the
// only rv.mesh.dial crossing of the epoch-1 formation — rank 1 dials
// nobody and the anchor's connections are the rendezvous sockets), so the
// anchor lands alone in epoch 1 while the surviving member times out on
// its mesh accept. The stranded member's retry then finds rank 0 dead
// from its side of the wreck (the anchor fenced epoch 0), elects itself,
// is refused the anchor address — the true anchor is alive — and ejects.
// Convergence: the anchor's next Grow compacts the dead ranks out and
// re-admits both processes, ending in a bit-exact p=3 world.
func TestChaosSplitWorldConverges(t *testing.T) {
	spec := faultSpec{point: "rv.mesh.dial", epoch: 1}
	hook, fired := spec.singleShot()
	addr := elasticFreeAddr(t)
	topts := tcp.Options{Timeout: 2 * time.Second, Hook: hook}

	var m0, m1 *gca.ElasticComm
	{
		var err0, err1 error
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); m0, err0 = elastic.Host(addr, 2, 8, topts) }()
		go func() { defer wg.Done(); m1, err1 = elastic.Dial(addr, 1, 2, topts) }()
		wg.Wait()
		if err0 != nil || err1 != nil {
			t.Fatalf("founding: %v / %v", err0, err1)
		}
	}
	defer m0.Close()
	s0 := gca.NewSession(m0, elasticOpts()...)
	s1 := gca.NewSession(m1, elasticOpts()...)

	joined := make(chan *gca.ElasticComm, 2)
	join := func() {
		m, err := elastic.Join(addr, tcp.Options{Timeout: 45 * time.Second, Hook: hook})
		if err != nil {
			t.Errorf("join: %v", err)
			joined <- nil
			return
		}
		joined <- m
	}
	go join()
	waitPendingAtLeast(t, m0, 1)

	// The split: the anchor's Grow succeeds (the fault fires after its
	// reply), the member's fails on mesh accept, the joiner's formation
	// faults and its join loop re-requests admission.
	var anchorNext *gca.Session
	var anchorErr, memberErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); anchorNext, anchorErr = s0.Grow() }()
	go func() { defer wg.Done(); _, memberErr = s1.Grow() }()
	wg.Wait()
	if anchorErr != nil {
		t.Fatalf("anchor grow: %v", anchorErr)
	}
	if memberErr == nil {
		t.Fatalf("member grow succeeded despite injected mesh fault")
	}
	if !fired.Load() {
		t.Fatalf("fault never fired")
	}

	// The stranded member retries, discovers it cannot take over the
	// anchor's address, and is ejected — the only honest outcome when the
	// world may have moved on without it.
	if _, err := s1.Grow(); !errors.Is(err, gca.ErrEjected) {
		t.Fatalf("stranded member grow: %v, want ErrEjected", err)
	}
	if gca.Retryable(gca.ErrEjected) {
		t.Fatalf("ErrEjected must not be classified retryable")
	}
	m1.Close()
	go join() // the ejected process rejoins through the front door

	// The anchor sees both ranks of its epoch-1 world dead, compacts them
	// out, and admits the two rejoiners in one transition.
	waitFailure(t, m0, 1)
	waitFailure(t, m0, 2)
	waitPendingAtLeast(t, m0, 2)
	healed, err := anchorNext.Grow()
	if err != nil {
		t.Fatalf("healing grow: %v", err)
	}
	final := make([]*gca.Session, 3)
	final[healed.Rank()] = healed
	for k := 0; k < 2; k++ {
		m := <-joined
		if m == nil {
			t.FailNow()
		}
		defer m.Close()
		final[m.Rank()] = gca.NewSession(m, elasticOpts()...)
	}
	for r, s := range final {
		if s == nil || s.Size() != 3 {
			t.Fatalf("rank %d missing or wrong size after convergence", r)
		}
	}
	forEachSession(t, final, "converged p=3 collectives", verifyCollectives)
}

// TestChaosPromotion kills the anchor process outright and checks the
// survivor takeover path: the lowest surviving rank binds the freed
// address, seeds the recovered anchor state from its own epoch, and the
// next Grow re-forms the world under it — after which a fresh joiner can
// still enter through the same address.
func TestChaosPromotion(t *testing.T) {
	addr := elasticFreeAddr(t)
	const timeout = 10 * time.Second
	comms := make([]*gca.ElasticComm, 3)
	{
		errs := make([]error, 3)
		var wg sync.WaitGroup
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				comms[r], errs[r] = gca.ConnectElastic(r, 3, addr, 8, timeout)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("connect rank %d: %v", r, err)
			}
		}
	}
	sessions := make([]*gca.Session, 3)
	for r := range sessions {
		sessions[r] = gca.NewSession(comms[r], elasticOpts()...)
	}
	forEachSession(t, sessions, "p=3 allreduce", quickAllreduce)

	// Kill rank 0 — anchor listener and all. Survivors detect, then Grow:
	// rank 1 promotes itself and the world compacts to p=2 under it.
	comms[0].Close()
	waitFailure(t, comms[1], 0)
	waitFailure(t, comms[2], 0)

	next := make([]*gca.Session, 2)
	{
		var mu sync.Mutex
		var wg sync.WaitGroup
		errs := make([]error, 3)
		for r := 1; r < 3; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				ns, err := sessions[r].Grow()
				if err != nil {
					errs[r] = err
					return
				}
				mu.Lock()
				next[ns.Rank()] = ns
				mu.Unlock()
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("promotion grow rank %d: %v", r, err)
			}
		}
	}
	promoted := gca.ElasticCommOf(next[0])
	if !promoted.IsAnchor() {
		t.Fatalf("surviving rank 0 is not the anchor after promotion")
	}
	if comms[1] != promoted {
		t.Fatalf("promotion landed on the wrong survivor")
	}
	forEachSession(t, next, "post-promotion p=2 allreduce", quickAllreduce)

	// The promoted anchor must serve joins at the same address.
	joined := make(chan *gca.ElasticComm, 1)
	go func() {
		m, err := gca.JoinElastic(addr, 30*time.Second)
		if err != nil {
			t.Errorf("join after promotion: %v", err)
			joined <- nil
			return
		}
		joined <- m
	}()
	waitPendingAtLeast(t, promoted, 1)
	final := growUntil(t, next, joined, 3, promoted)
	forEachSession(t, final, "post-promotion p=3 collectives", verifyCollectives)
	for _, s := range final {
		gca.ElasticCommOf(s).Close()
	}
}

// TestChaosWire runs the lifecycle through the seeded connection-fault
// injector: every rendezvous, join, and mesh dial goes through a net that
// randomly refuses dials and drops fresh connections before the first
// byte. The retry machinery must absorb all of it — the worlds form, the
// collectives are bit-exact, and the stats prove chaos actually flowed.
// Deterministic per seed; override with CHAOS_SEED (echoed on failure).
func TestChaosWire(t *testing.T) {
	seed := int64(0xC0FFEE)
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 0, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED %q: %v", v, err)
		}
		seed = n
	}
	fnet := faulty.NewNet(faulty.NetOptions{
		Seed:              seed,
		DialRefuseProb:    0.2,
		HandshakeDropProb: 0.1,
	})
	addr := elasticFreeAddr(t)
	topts := tcp.Options{Timeout: 15 * time.Second, Dialer: fnet.Dialer()}

	comms := make([]*gca.ElasticComm, 3)
	{
		errs := make([]error, 3)
		var wg sync.WaitGroup
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if r == 0 {
					comms[r], errs[r] = elastic.Host(addr, 3, 8, topts)
				} else {
					comms[r], errs[r] = elastic.Dial(addr, r, 3, topts)
				}
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("founding through chaos (seed %#x) rank %d: %v", seed, r, err)
			}
		}
	}
	var closeOnce sync.Once
	closers := comms[:]
	defer closeOnce.Do(func() {
		for _, c := range closers {
			c.Close()
		}
	})
	sessions := make([]*gca.Session, 3)
	for r := range sessions {
		sessions[r] = gca.NewSession(comms[r], elasticOpts()...)
	}

	// Grow to 5 with joiners dialing through the same chaotic net.
	joined := make(chan *gca.ElasticComm, 2)
	for i := 0; i < 2; i++ {
		go func() {
			m, err := elastic.Join(addr, topts)
			if err != nil {
				t.Errorf("join through chaos (seed %#x): %v", seed, err)
				joined <- nil
				return
			}
			joined <- m
		}()
	}
	waitPendingAtLeast(t, comms[0], 2)
	sessions5 := growUntil(t, sessions, joined, 5, comms[0])
	for _, s := range sessions5[3:] {
		closers = append(closers, gca.ElasticCommOf(s))
	}
	forEachSession(t, sessions5, "p=5 chaos collectives", verifyCollectives)

	// A few joinerless regroups rack up enough dials that zero injected
	// refusals would mean the injector never touched the path.
	cur := sessions5
	for i := 0; i < 3; i++ {
		empty := make(chan *gca.ElasticComm)
		cur = growUntil(t, cur, empty, 5, comms[0])
	}
	forEachSession(t, cur, "post-churn allreduce", quickAllreduce)

	dials, refused, _ := fnet.Stats()
	if dials < 20 {
		t.Fatalf("only %d dials crossed the chaos net (seed %#x) — lifecycle too small to mean anything", dials, seed)
	}
	if refused == 0 {
		t.Fatalf("no dial refusals injected across %d dials (seed %#x)", dials, seed)
	}
	t.Logf("chaos wire stats (seed %#x): %d dials, %d refused", seed, dials, refused)
}
