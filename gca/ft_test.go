package gca_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exacoll/gca"
	"exacoll/internal/comm"
)

// TestSessionKillAndShrink is the headline fault-tolerance scenario: a rank
// dies mid-collective, every survivor's call returns an error wrapping
// ErrAborted (no hang, no split-brain), and after Shrink the survivors
// complete a correct Allreduce over the dense sub-communicator.
func TestSessionKillAndShrink(t *testing.T) {
	const p, victim = 4, 2
	w := gca.NewLocalWorld(p)
	defer w.Close()

	var mu sync.Mutex
	sums := map[int]float64{}

	errs := w.RunAll(func(c gca.Comm) error {
		if c.Rank() == victim {
			w.Kill(victim)
			return nil
		}
		s := gca.NewSession(c, gca.WithFaultTolerance(), gca.WithTimeout(time.Second))
		in := []float64{float64(int(1) << c.Rank())}
		if out, err := s.AllreduceFloat64(in, gca.Sum); err == nil {
			return fmt.Errorf("allreduce with dead rank %d succeeded: %v", victim, out)
		} else if !errors.Is(err, gca.ErrAborted) {
			return fmt.Errorf("allreduce error = %v, want ErrAborted", err)
		}
		sub, err := s.Shrink()
		if err != nil {
			return fmt.Errorf("shrink: %w", err)
		}
		if sub.Size() != p-1 {
			return fmt.Errorf("shrunk size = %d, want %d", sub.Size(), p-1)
		}
		got, err := sub.AllreduceFloat64(in, gca.Sum)
		if err != nil {
			return fmt.Errorf("post-shrink allreduce: %w", err)
		}
		mu.Lock()
		sums[c.Rank()] = got[0]
		mu.Unlock()
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
	want := float64(1 + 2 + 8) // survivors 0, 1, 3 contribute 1<<rank
	for r, got := range sums {
		if got != want {
			t.Errorf("rank %d post-shrink sum = %v, want %v", r, got, want)
		}
	}
}

// TestSessionCtxDeadline exercises the per-call *Ctx variants: an already
// expired context fails locally, and a live deadline bounds the collective
// so a deserted rank times out instead of hanging.
func TestSessionCtxDeadline(t *testing.T) {
	w := gca.NewLocalWorld(2)
	defer w.Close()

	errs := w.RunAll(func(c gca.Comm) error {
		s := gca.NewSession(c)
		expired, cancel := context.WithDeadline(context.Background(),
			time.Now().Add(-time.Second))
		defer cancel()
		if err := s.BarrierCtx(expired); !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("expired ctx: got %v, want DeadlineExceeded", err)
		}
		if c.Rank() == 0 {
			return nil // deserts the bcast: rank 1 must time out, not hang
		}
		ctx, cancel2 := context.WithTimeout(context.Background(), 150*time.Millisecond)
		defer cancel2()
		err := s.BcastCtx(ctx, make([]byte, 8), 0)
		if !errors.Is(err, gca.ErrTimeout) {
			return fmt.Errorf("deadline bcast: got %v, want ErrTimeout", err)
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

// TestSessionTimeoutNoHang: a session-wide WithTimeout turns a deserted
// collective into an ErrTimeout instead of a hang, without fault tolerance.
func TestSessionTimeoutNoHang(t *testing.T) {
	w := gca.NewLocalWorld(2)
	defer w.Close()

	errs := w.RunAll(func(c gca.Comm) error {
		if c.Rank() == 0 {
			return nil
		}
		s := gca.NewSession(c, gca.WithTimeout(200*time.Millisecond))
		err := s.Bcast(make([]byte, 8), 0)
		if !errors.Is(err, gca.ErrTimeout) {
			return fmt.Errorf("got %v, want ErrTimeout", err)
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

// flakyComm injects exactly one failure world-wide: the first completed
// receive on a native-epoch collective tag reports an error after the
// message was consumed. Retried attempts run in a translated epoch window,
// so the fault can only hit the first attempt — the transient-failure shape
// WithRetry exists to absorb.
type flakyComm struct {
	inner comm.Comm
	fired *atomic.Bool
}

var errFlaky = errors.New("flaky: injected transient receive failure")

func (f *flakyComm) trip(tag comm.Tag) bool {
	return tag >= comm.TagCollBase && tag < comm.TagCollBase+comm.FTEpochStride &&
		f.fired.CompareAndSwap(false, true)
}

func (f *flakyComm) Rank() int           { return f.inner.Rank() }
func (f *flakyComm) Size() int           { return f.inner.Size() }
func (f *flakyComm) ChargeCompute(n int) { f.inner.ChargeCompute(n) }

func (f *flakyComm) Send(to int, tag comm.Tag, buf []byte) error {
	return f.inner.Send(to, tag, buf)
}

func (f *flakyComm) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return f.inner.Isend(to, tag, buf)
}

func (f *flakyComm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	n, err := f.inner.Recv(from, tag, buf)
	if err == nil && f.trip(tag) {
		return n, errFlaky
	}
	return n, err
}

func (f *flakyComm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	req, err := f.inner.Irecv(from, tag, buf)
	if err != nil {
		return nil, err
	}
	return &flakyRecvReq{Request: req, f: f, tag: tag}, nil
}

type flakyRecvReq struct {
	comm.Request
	f        *flakyComm
	tag      comm.Tag
	resolved bool
	err      error
}

func (r *flakyRecvReq) Wait() error {
	if r.resolved {
		return r.err
	}
	err := r.Request.Wait()
	if err == nil && r.f.trip(r.tag) {
		err = errFlaky
	}
	r.resolved, r.err = true, err
	return r.err
}

// The fault-tolerance layer needs the capability interfaces forwarded.
func (f *flakyComm) SetOpTimeout(d time.Duration) {
	if dl, ok := f.inner.(comm.Deadliner); ok {
		dl.SetOpTimeout(d)
	}
}

func (f *flakyComm) Failed() []int {
	if fd, ok := f.inner.(comm.FailureDetector); ok {
		return fd.Failed()
	}
	return nil
}

func (f *flakyComm) PurgeTags(lo, hi comm.Tag) {
	if pg, ok := f.inner.(comm.Purger); ok {
		pg.PurgeTags(lo, hi)
	}
}

// TestSessionRetryRecoversTransientFault: one rank's receive fails once
// with an injected error; the agreement aborts the collective on every
// rank, WithRetry re-runs it in lockstep in a fresh tag epoch, and the
// second attempt delivers the correct broadcast everywhere.
func TestSessionRetryRecoversTransientFault(t *testing.T) {
	const p = 4
	w := gca.NewLocalWorld(p)
	defer w.Close()

	var fired atomic.Bool
	reg := gca.NewMetrics()

	errs := w.RunAll(func(c gca.Comm) error {
		if c.Rank() == 1 {
			c = &flakyComm{inner: c, fired: &fired}
		}
		s := gca.NewSession(c,
			gca.WithRetry(2, 10*time.Millisecond),
			gca.WithTimeout(500*time.Millisecond),
			gca.WithMetrics(reg))
		buf := make([]byte, 64)
		if c.Rank() == 0 {
			for i := range buf {
				buf[i] = 7
			}
		}
		if err := s.Bcast(buf, 0); err != nil {
			return fmt.Errorf("bcast: %w", err)
		}
		for i, b := range buf {
			if b != 7 {
				return fmt.Errorf("buf[%d] = %d after retry, want 7", i, b)
			}
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
	if !fired.Load() {
		t.Fatal("fault was never injected: test exercised nothing")
	}
	tot := reg.Snapshot().Totals()
	if tot.FTRetries == 0 {
		t.Error("no retries recorded despite an injected failure")
	}
	if tot.FTAborted == 0 {
		t.Error("no aborted agreement recorded despite an injected failure")
	}
}
