package gca_test

import (
	"fmt"

	"exacoll/gca"
)

// ExampleSession_Allreduce shows the one-liner data-parallel sum.
func ExampleSession_Allreduce() {
	world := gca.NewLocalWorld(4)
	defer world.Close()
	_ = world.Run(func(c gca.Comm) error {
		s := gca.NewSession(c, gca.OnMachine(gca.Frontier()))
		sum, err := s.AllreduceFloat64([]float64{float64(s.Rank())}, gca.Sum)
		if err != nil {
			return err
		}
		if s.Rank() == 0 {
			fmt.Println("sum:", sum[0])
		}
		return nil
	})
	// Output: sum: 6
}

// ExampleSession_Bcast broadcasts a buffer from a chosen root.
func ExampleSession_Bcast() {
	world := gca.NewLocalWorld(3)
	defer world.Close()
	_ = world.Run(func(c gca.Comm) error {
		s := gca.NewSession(c)
		msg := make([]byte, 5)
		if s.Rank() == 2 {
			copy(msg, "hello")
		}
		if err := s.Bcast(msg, 2); err != nil {
			return err
		}
		if s.Rank() == 0 {
			fmt.Println(string(msg))
		}
		return nil
	})
	// Output: hello
}

// ExampleNewSimulation measures a collective's latency on a simulated
// exascale machine without any hardware.
func ExampleNewSimulation() {
	sim, err := gca.NewSimulation(gca.Frontier(), 16)
	if err != nil {
		panic(err)
	}
	_ = sim.Run(func(c gca.Comm) error {
		s := gca.NewSession(c, gca.OnMachine(gca.Frontier()))
		_, err := s.AllreduceFloat64(make([]float64, 1024), gca.Sum)
		return err
	})
	fmt.Println("positive latency:", sim.Latency() > 0)
	// Output: positive latency: true
}
