package gca_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"exacoll/gca"
)

// TestFlightDumpSession runs recorded collectives through the public API
// and checks the collected dump names every session call, in order, and
// that the critical-path analysis attributes the wall time it claims to.
func TestFlightDumpSession(t *testing.T) {
	const p = 4
	w := gca.NewLocalWorld(p)
	defer w.Close()
	var (
		mu   sync.Mutex
		dump *gca.FlightDump
	)
	err := w.Run(func(c gca.Comm) error {
		s := gca.NewSession(c,
			gca.WithFlightRecorder(gca.FlightOptions{}),
			gca.WithMetrics(gca.NewMetrics()))
		buf := make([]byte, 2048)
		rb := make([]byte, 2048)
		if err := s.Bcast(buf, 0); err != nil {
			return err
		}
		if err := s.Allreduce(buf, rb, gca.Sum, gca.Float64); err != nil {
			return err
		}
		if err := s.Barrier(); err != nil {
			return err
		}
		d, err := s.FlightDump()
		if err != nil {
			return err
		}
		if d != nil {
			mu.Lock()
			dump = d
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if dump == nil {
		t.Fatal("rank 0 received no dump")
	}
	if dump.P != p {
		t.Fatalf("dump.P = %d, want %d", dump.P, p)
	}

	a := dump.Analyze()
	if len(a.Instances) != 3 {
		t.Fatalf("analyzed %d instances, want 3 (bcast, allreduce, barrier)", len(a.Instances))
	}
	for i, want := range []string{"bcast", "allreduce", "barrier"} {
		in := a.Instances[i]
		if in.Label != want {
			t.Errorf("instance %d label %q, want %q", i, in.Label, want)
		}
		if in.WallNs() <= 0 {
			t.Errorf("instance %d has non-positive wall time %d", i, in.WallNs())
		}
		if got, wall := in.AttributedNs(), in.WallNs(); 10*got < 9*wall {
			t.Errorf("instance %d attributes %d of %d ns (<90%%)", i, got, wall)
		}
	}
	// The dispatch layer's nested bracket names the chosen algorithm.
	if a.Instances[1].Alg == "" {
		t.Errorf("allreduce instance has no algorithm label")
	}

	var rep bytes.Buffer
	if err := gca.WriteFlightReport(&rep, dump); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flight: 4 ranks", "allreduce", "attributed"} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("report missing %q:\n%s", want, rep.String())
		}
	}
	var chrome bytes.Buffer
	if err := gca.WriteFlightTrace(&chrome, dump); err != nil {
		t.Fatal(err)
	}
	if chrome.Len() == 0 {
		t.Error("Chrome trace export is empty")
	}

	// The JSON interchange reloads through the public reader.
	var js bytes.Buffer
	if err := dump.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	got, err := gca.ReadFlightDump(&js)
	if err != nil {
		t.Fatal(err)
	}
	if got.P != p {
		t.Fatalf("reloaded dump has P=%d, want %d", got.P, p)
	}
}

// TestFlightDumpFaultTolerant checks the recorder coexists with the
// fault-tolerance wrapper: RecorderOf must see through the epoch comm and
// agreement traffic must not corrupt collective matching.
func TestFlightDumpFaultTolerant(t *testing.T) {
	const p = 4
	w := gca.NewLocalWorld(p)
	defer w.Close()
	var (
		mu   sync.Mutex
		dump *gca.FlightDump
	)
	err := w.Run(func(c gca.Comm) error {
		s := gca.NewSession(c,
			gca.WithFlightRecorder(gca.FlightOptions{RingSize: 1 << 12}),
			gca.WithFaultTolerance())
		buf := make([]byte, 1024)
		rb := make([]byte, 1024)
		for i := 0; i < 2; i++ {
			if err := s.Allreduce(buf, rb, gca.Sum, gca.Float64); err != nil {
				return err
			}
		}
		d, err := s.FlightDump()
		if err != nil {
			return err
		}
		if d != nil {
			mu.Lock()
			dump = d
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if dump == nil {
		t.Fatal("rank 0 received no dump")
	}
	a := dump.Analyze()
	if len(a.Instances) != 2 {
		t.Fatalf("analyzed %d instances, want 2", len(a.Instances))
	}
	for _, in := range a.Instances {
		if in.Label != "allreduce" {
			t.Fatalf("instance label %q, want allreduce", in.Label)
		}
	}
}

// TestFlightDumpWithoutRecorder pins the error contract.
func TestFlightDumpWithoutRecorder(t *testing.T) {
	w := gca.NewLocalWorld(2)
	defer w.Close()
	err := w.Run(func(c gca.Comm) error {
		_, err := gca.NewSession(c).FlightDump()
		if err == nil {
			t.Error("FlightDump without WithFlightRecorder returned nil error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
