package gca_test

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exacoll/gca"
	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/tuning"
)

// The chaos conformance suite: kill one rank at every operation boundary of
// every Table I generalized algorithm and assert the ULFM contract — every
// surviving rank returns the same outcome within the deadline (no hang, no
// split-brain), and when the outcome is an abort, Shrink yields a working
// sub-communicator on which the survivors complete a correct Allreduce.

const (
	chaosP      = 4
	chaosVictim = 2
	chaosBytes  = 96
)

// killerComm wraps the victim rank's communicator and fires the configured
// kill switch immediately before the Nth counted operation (sends and
// receive posts, agreement traffic included), so a sweep over N places the
// failure at every point of the collective and of the agreement that
// follows it.
type killerComm struct {
	inner     comm.Comm
	kill      func()
	remaining atomic.Int64 // ops allowed before the kill fires
	counted   atomic.Int64 // total ops observed (for sizing the sweep)
}

func newKiller(inner comm.Comm, killpoint int, kill func()) *killerComm {
	k := &killerComm{inner: inner, kill: kill}
	if killpoint < 0 {
		k.remaining.Store(1 << 40) // never fires; counts ops
	} else {
		k.remaining.Store(int64(killpoint))
	}
	return k
}

func (k *killerComm) tick() {
	k.counted.Add(1)
	if k.remaining.Add(-1) == -1 {
		k.kill()
	}
}

func (k *killerComm) Rank() int           { return k.inner.Rank() }
func (k *killerComm) Size() int           { return k.inner.Size() }
func (k *killerComm) ChargeCompute(n int) { k.inner.ChargeCompute(n) }

func (k *killerComm) Send(to int, tag comm.Tag, buf []byte) error {
	k.tick()
	return k.inner.Send(to, tag, buf)
}

func (k *killerComm) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	k.tick()
	return k.inner.Isend(to, tag, buf)
}

func (k *killerComm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	k.tick()
	return k.inner.Recv(from, tag, buf)
}

func (k *killerComm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	k.tick()
	return k.inner.Irecv(from, tag, buf)
}

func (k *killerComm) SetOpTimeout(d time.Duration) {
	if dl, ok := k.inner.(comm.Deadliner); ok {
		dl.SetOpTimeout(d)
	}
}

func (k *killerComm) Failed() []int {
	if fd, ok := k.inner.(comm.FailureDetector); ok {
		return fd.Failed()
	}
	return nil
}

func (k *killerComm) PurgeTags(lo, hi comm.Tag) {
	if pg, ok := k.inner.(comm.Purger); ok {
		pg.PurgeTags(lo, hi)
	}
}

// forcingTable pins the session's selection to exactly one algorithm at its
// default radix, so the sweep drives every Table I entry rather than the
// tuned pick.
func forcingTable(alg *core.Algorithm) *tuning.Table {
	k := 0
	if alg.Generalized {
		k = alg.DefaultK
	}
	ops := map[string][]tuning.Entry{
		alg.Op.String(): {{Alg: alg.Name, K: k}},
	}
	// The post-shrink recovery check needs an Allreduce ladder even when
	// the algorithm under test is a different op.
	if alg.Op != core.OpAllreduce {
		ops[core.OpAllreduce.String()] = []tuning.Entry{{Alg: "allreduce_ring"}}
	}
	return &tuning.Table{Machine: "chaos", P: chaosP, Ops: ops}
}

// chaosCollective returns a runner invoking the session call for op with
// verifiable payloads. Contents are only checked when verify is true (the
// fault-free run); in killed runs the buffers carry no guarantee.
func chaosCollective(op core.CollOp) func(s *gca.Session, rank int, verify bool) error {
	// BOr over Uint8 keeps reduction results checkable bytewise: rank r
	// contributes 1<<r everywhere, so the full reduction is 0x0F at p=4.
	full := byte(1<<chaosP - 1)
	switch op {
	case core.OpBcast:
		return func(s *gca.Session, rank int, verify bool) error {
			buf := make([]byte, chaosBytes)
			if rank == 0 {
				for i := range buf {
					buf[i] = byte(i%251) + 1
				}
			}
			if err := s.Bcast(buf, 0); err != nil {
				return err
			}
			if verify {
				for i := range buf {
					if buf[i] != byte(i%251)+1 {
						return fmt.Errorf("bcast buf[%d] = %d", i, buf[i])
					}
				}
			}
			return nil
		}
	case core.OpReduce:
		return func(s *gca.Session, rank int, verify bool) error {
			send := make([]byte, chaosBytes)
			recv := make([]byte, chaosBytes)
			for i := range send {
				send[i] = 1 << rank
			}
			if err := s.Reduce(send, recv, gca.BOr, gca.Uint8, 0); err != nil {
				return err
			}
			if verify && rank == 0 {
				for i := range recv {
					if recv[i] != full {
						return fmt.Errorf("reduce recv[%d] = %#x, want %#x", i, recv[i], full)
					}
				}
			}
			return nil
		}
	case core.OpAllreduce:
		return func(s *gca.Session, rank int, verify bool) error {
			send := make([]byte, chaosBytes)
			recv := make([]byte, chaosBytes)
			for i := range send {
				send[i] = 1 << rank
			}
			if err := s.Allreduce(send, recv, gca.BOr, gca.Uint8); err != nil {
				return err
			}
			if verify {
				for i := range recv {
					if recv[i] != full {
						return fmt.Errorf("allreduce recv[%d] = %#x, want %#x", i, recv[i], full)
					}
				}
			}
			return nil
		}
	case core.OpAllgather:
		return func(s *gca.Session, rank int, verify bool) error {
			send := make([]byte, chaosBytes)
			recv := make([]byte, chaosBytes*chaosP)
			for i := range send {
				send[i] = byte(rank + 1)
			}
			if err := s.Allgather(send, recv); err != nil {
				return err
			}
			if verify {
				for i := range recv {
					if want := byte(i/chaosBytes + 1); recv[i] != want {
						return fmt.Errorf("allgather recv[%d] = %d, want %d", i, recv[i], want)
					}
				}
			}
			return nil
		}
	default:
		return nil
	}
}

// survivorSum is the expected post-shrink Allreduce result: each surviving
// rank contributes 1<<oldRank.
func survivorSum() float64 {
	s := 0
	for r := 0; r < chaosP; r++ {
		if r != chaosVictim {
			s += 1 << r
		}
	}
	return float64(s)
}

// chaosRank is the per-rank body shared by the mem and tcp sweeps: run the
// collective, and on an agreed abort recover via Shrink + Allreduce. The
// collective's outcome is recorded in outcomes for the split-brain check.
func chaosRank(s *gca.Session, rank, killpoint int,
	run func(*gca.Session, int, bool) error, outcomes []error) error {
	err := run(s, rank, killpoint < 0)
	outcomes[rank] = err
	if rank == chaosVictim {
		return nil // the dead rank's own error is not part of the contract
	}
	if err == nil {
		return nil // kill landed after the agreement; detected next call
	}
	if !errors.Is(err, gca.ErrAborted) {
		return fmt.Errorf("collective error = %v, want ErrAborted", err)
	}
	sub, serr := s.Shrink()
	if serr != nil {
		return fmt.Errorf("shrink: %w", serr)
	}
	if sub.Size() != chaosP-1 {
		return fmt.Errorf("shrunk size = %d, want %d", sub.Size(), chaosP-1)
	}
	got, aerr := sub.AllreduceFloat64([]float64{float64(int(1) << rank)}, gca.Sum)
	if aerr != nil {
		return fmt.Errorf("post-shrink allreduce: %w", aerr)
	}
	if want := survivorSum(); got[0] != want {
		return fmt.Errorf("post-shrink sum = %v, want %v", got[0], want)
	}
	return nil
}

// checkOutcomes asserts the agreement contract on one killed run: every
// surviving rank saw the same verdict.
func checkOutcomes(t *testing.T, killpoint int, outcomes []error) {
	t.Helper()
	var ok, aborted int
	for r, err := range outcomes {
		if r == chaosVictim {
			continue
		}
		if err == nil {
			ok++
		} else {
			aborted++
		}
	}
	if ok != 0 && aborted != 0 {
		t.Fatalf("killpoint %d: split-brain among survivors: %d succeeded, %d aborted (%v)",
			killpoint, ok, aborted, outcomes)
	}
}

// sweepPoints chooses the kill points for a victim that issues total ops:
// every boundary normally, a five-point sample under -short.
func sweepPoints(total int, short bool) []int {
	if total <= 0 {
		return nil
	}
	if !short {
		pts := make([]int, total)
		for i := range pts {
			pts[i] = i
		}
		return pts
	}
	seen := map[int]bool{}
	var pts []int
	for _, p := range []int{0, 1, total / 4, total / 2, total - 1} {
		if p >= 0 && p < total && !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

// chaosRunMem executes one run on a fresh mem world, returning the victim's
// op count. killpoint < 0 means fault-free (contents verified).
func chaosRunMem(t *testing.T, tab *tuning.Table,
	run func(*gca.Session, int, bool) error, killpoint int) int {
	t.Helper()
	w := gca.NewLocalWorld(chaosP)
	defer w.Close()

	var killer *killerComm
	outcomes := make([]error, chaosP)
	done := make(chan []error, 1)
	go func() {
		done <- w.RunAll(func(c gca.Comm) error {
			rank := c.Rank()
			if rank == chaosVictim {
				killer = newKiller(c, killpoint, func() { w.Kill(chaosVictim) })
				c = killer
			}
			s := gca.NewSession(c, gca.WithTable(tab), gca.WithFaultTolerance(),
				gca.WithTimeout(250*time.Millisecond))
			return chaosRank(s, rank, killpoint, run, outcomes)
		})
	}()
	var errs []error
	select {
	case errs = <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("killpoint %d: world hung past the deadline", killpoint)
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("killpoint %d rank %d: %v", killpoint, r, err)
		}
	}
	if killpoint < 0 {
		if outcomes[chaosVictim] != nil {
			t.Fatalf("fault-free run failed on victim rank: %v", outcomes[chaosVictim])
		}
	} else {
		checkOutcomes(t, killpoint, outcomes)
	}
	return int(killer.counted.Load())
}

// TestChaosKillSweepMem kills the victim before every operation of every
// Table I algorithm on the in-process transport.
func TestChaosKillSweepMem(t *testing.T) {
	for _, alg := range core.TableIAlgorithms() {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			t.Parallel()
			run := chaosCollective(alg.Op)
			if run == nil {
				t.Fatalf("no chaos runner for op %v", alg.Op)
			}
			tab := forcingTable(alg)
			total := chaosRunMem(t, tab, run, -1)
			if total == 0 {
				t.Fatal("victim issued no operations; sweep is vacuous")
			}
			for _, kp := range sweepPoints(total, testing.Short()) {
				chaosRunMem(t, tab, run, kp)
			}
		})
	}
}

// tcpChaosWorld rendezvouses p ranks over loopback and returns their comms.
func tcpChaosWorld(t *testing.T, p int) []gca.Comm {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := l.Addr().String()
	l.Close()

	comms := make([]gca.Comm, p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comms[r], errs[r] = gca.ConnectTCP(r, p, addr, 5*time.Second)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rendezvous rank %d: %v", r, err)
		}
	}
	return comms
}

// chaosRunTCP is chaosRunMem over real sockets: the kill is an abrupt close
// of the victim's transport, detected by the peers as ErrPeerDead.
func chaosRunTCP(t *testing.T, tab *tuning.Table,
	run func(*gca.Session, int, bool) error, killpoint int) {
	t.Helper()
	comms := tcpChaosWorld(t, chaosP)
	defer func() {
		for _, c := range comms {
			if cl, ok := c.(io.Closer); ok {
				cl.Close()
			}
		}
	}()

	outcomes := make([]error, chaosP)
	errs := make([]error, chaosP)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for r := 0; r < chaosP; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				c := comms[r]
				if r == chaosVictim {
					cl := c.(io.Closer)
					c = newKiller(c, killpoint, func() { cl.Close() })
				}
				s := gca.NewSession(c, gca.WithTable(tab), gca.WithFaultTolerance(),
					gca.WithTimeout(time.Second))
				errs[r] = chaosRank(s, r, killpoint, run, outcomes)
			}(r)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("killpoint %d: tcp world hung past the deadline", killpoint)
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("killpoint %d rank %d: %v", killpoint, r, err)
		}
	}
	if killpoint >= 0 {
		checkOutcomes(t, killpoint, outcomes)
	}
}

// TestChaosKillTCP drives every Table I algorithm over loopback TCP with
// the victim dying at two representative points (first operation and
// mid-collective), plus a fault-free verification run.
func TestChaosKillTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp chaos sweep skipped in -short mode")
	}
	for _, alg := range core.TableIAlgorithms() {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			t.Parallel()
			run := chaosCollective(alg.Op)
			if run == nil {
				t.Fatalf("no chaos runner for op %v", alg.Op)
			}
			tab := forcingTable(alg)
			chaosRunTCP(t, tab, run, -1)
			for _, kp := range []int{0, 3} {
				chaosRunTCP(t, tab, run, kp)
			}
		})
	}
}
