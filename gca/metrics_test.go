package gca

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"exacoll/internal/metrics"
)

// TestSessionMetrics is the observability acceptance test: an
// instrumented 8-rank local-world Allreduce must expose, via
// Session.Snapshot, nonzero send/recv/byte counters, a selection-decision
// record naming the algorithm and radix actually run, and Prometheus +
// JSON exports that round-trip those values.
func TestSessionMetrics(t *testing.T) {
	const p = 8
	const nbytes = 1 << 10
	w := NewLocalWorld(p)
	defer w.Close()
	reg := NewMetrics()
	sessions := make([]*Session, p)
	err := w.Run(func(c Comm) error {
		s := NewSession(c, OnMachine(Frontier()), WithMetrics(reg))
		sessions[s.Rank()] = s
		sendbuf := make([]byte, nbytes)
		recvbuf := make([]byte, nbytes)
		return s.Allreduce(sendbuf, recvbuf, Sum, Float64)
	})
	if err != nil {
		t.Fatal(err)
	}

	snap := sessions[0].Snapshot()
	tot := snap.Totals()
	if tot.Sends == 0 || tot.Recvs == 0 || tot.SendBytes == 0 || tot.RecvBytes == 0 {
		t.Fatalf("expected nonzero counters, got %+v", tot)
	}
	if len(snap.Ranks) != p {
		t.Fatalf("snapshot covers %d ranks, want %d", len(snap.Ranks), p)
	}

	// At least one decision record naming the algorithm and k actually
	// run (every rank records one; the choice must be an allreduce
	// algorithm from the session's table).
	if len(snap.Decisions) != p {
		t.Fatalf("got %d decisions, want %d", len(snap.Decisions), p)
	}
	d := snap.Decisions[0]
	if d.Op != "MPI_Allreduce" || d.Alg == "" {
		t.Fatalf("decision does not name the collective/algorithm: %+v", d)
	}
	if !strings.HasPrefix(d.Alg, "allreduce_") {
		t.Errorf("decision algorithm %q is not an allreduce algorithm", d.Alg)
	}
	if d.Bytes != nbytes {
		t.Errorf("decision selection size %d, want %d", d.Bytes, nbytes)
	}
	for _, other := range snap.Decisions {
		if other.Alg != d.Alg || other.K != d.K {
			t.Errorf("ranks disagree on selection: %+v vs %+v", d, other)
		}
	}

	// Prometheus export round-trips the counter values.
	var prom bytes.Buffer
	if err := WriteMetricsPrometheus(&prom, snap); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		fmt.Sprintf("gca_sends_total{rank=\"0\"} %d", snap.Ranks[0].Sends),
		fmt.Sprintf("gca_recv_bytes_total{rank=\"%d\"} %d", p-1, snap.Ranks[p-1].RecvBytes),
		fmt.Sprintf("gca_collective_runs_total{op=\"MPI_Allreduce\",alg=%q,k=\"%d\"} %d", d.Alg, d.K, p),
		fmt.Sprintf("gca_decisions_total %d", p),
	} {
		if !strings.Contains(prom.String(), want+"\n") {
			t.Errorf("prometheus export missing %q\n%s", want, prom.String())
		}
	}

	// JSON export round-trips the whole snapshot.
	var js bytes.Buffer
	if err := WriteMetricsJSON(&js, snap); err != nil {
		t.Fatal(err)
	}
	back, err := metrics.ReadJSON(&js)
	if err != nil {
		t.Fatal(err)
	}
	bt := back.Totals()
	if bt.Sends != tot.Sends || bt.Recvs != tot.Recvs ||
		bt.SendBytes != tot.SendBytes || bt.RecvBytes != tot.RecvBytes {
		t.Errorf("JSON round trip changed totals: %+v vs %+v", bt, tot)
	}
	if back.DecisionsTotal != snap.DecisionsTotal || len(back.Decisions) != len(snap.Decisions) {
		t.Errorf("JSON round trip changed decisions: %d/%d vs %d/%d",
			back.DecisionsTotal, len(back.Decisions), snap.DecisionsTotal, len(snap.Decisions))
	}

	// A session without WithMetrics yields an empty snapshot, not a nil
	// dereference.
	err = w.Run(func(c Comm) error {
		s := NewSession(c)
		if s.Metrics() != nil {
			return fmt.Errorf("expected nil registry without WithMetrics")
		}
		if got := s.Snapshot().Totals(); got.Sends != 0 {
			return fmt.Errorf("expected empty snapshot, got %+v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
