package gca_test

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"exacoll/gca"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
)

// vcollElems is the skewed per-rank element-count vector the session
// tests share: ragged, with zero-contribution ranks.
func vcollElems(p int) []int {
	counts := make([]int, p)
	for r := range counts {
		counts[r] = (r * 5) % 7 // 0, 5, 3, 1, 6, ... — zeros included
	}
	return counts
}

// TestSessionVColl drives the three vector collectives through the public
// Session API on a local world — packed and displaced layouts — and
// checks data, the selection-decision records (op name, shared selection
// size, cross-rank agreement), and that the chosen algorithms come from
// the right ladders.
func TestSessionVColl(t *testing.T) {
	const p = 6
	w := gca.NewLocalWorld(p)
	defer w.Close()
	reg := gca.NewMetrics()
	counts := vcollElems(p)
	off := make([]int, p+1)
	for r, n := range counts {
		off[r+1] = off[r] + n
	}
	total := off[p]

	err := w.Run(func(c gca.Comm) error {
		s := gca.NewSession(c, gca.OnMachine(gca.Frontier()), gca.WithMetrics(reg))
		me := s.Rank()

		// Allgatherv, int32 payloads, packed then displaced.
		enc32 := func(seed, n int) []byte {
			b := make([]byte, 4*n)
			for i := 0; i < n; i++ {
				v := uint32(seed*1000 + i)
				b[4*i], b[4*i+1], b[4*i+2], b[4*i+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			}
			return b
		}
		recv := make([]byte, 4*total)
		if err := s.Allgatherv(enc32(me, counts[me]), counts, nil, recv, gca.Int32); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			if !bytes.Equal(recv[4*off[r]:4*off[r+1]], enc32(r, counts[r])) {
				return fmt.Errorf("allgatherv block %d mismatch at rank %d", r, me)
			}
		}
		// Displaced: reverse rank order, with one element of slack between
		// blocks so placement is genuinely non-packed.
		displs := make([]int, p)
		pos := 0
		for r := p - 1; r >= 0; r-- {
			displs[r] = pos
			pos += counts[r] + 1
		}
		dst := make([]byte, 4*pos)
		if err := s.Allgatherv(enc32(me, counts[me]), counts, displs, dst, gca.Int32); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			got := dst[4*displs[r] : 4*displs[r]+4*counts[r]]
			if !bytes.Equal(got, enc32(r, counts[r])) {
				return fmt.Errorf("displaced allgatherv block %d mismatch at rank %d", r, me)
			}
		}

		// ReduceScatterv over float64 with exact small-integer sums.
		vec := func(r int) []float64 {
			v := make([]float64, total)
			for i := range v {
				v[i] = float64((r + 1) * (i + 2))
			}
			return v
		}
		sum := make([]float64, total)
		for r := 0; r < p; r++ {
			for i, x := range vec(r) {
				sum[i] += x
			}
		}
		rsRecv := make([]byte, 8*counts[me])
		if err := s.ReduceScatterv(datatype.EncodeFloat64(vec(me)), rsRecv, counts, gca.Sum, gca.Float64); err != nil {
			return err
		}
		want := datatype.EncodeFloat64(sum)[8*off[me] : 8*off[me+1]]
		if !bytes.Equal(rsRecv, want) {
			return fmt.Errorf("reduce-scatterv mismatch at rank %d", me)
		}

		// Alltoallv with per-pair skew (bytes, Uint8), packed rows.
		cell := func(i, j int) int { return (i*3 + j*5) % 4 }
		blk := func(i, j int) []byte {
			b := make([]byte, cell(i, j))
			for x := range b {
				b[x] = byte(i*59 + j*17 + x)
			}
			return b
		}
		var sendcounts, recvcounts []int
		var send []byte
		for q := 0; q < p; q++ {
			sendcounts = append(sendcounts, cell(me, q))
			recvcounts = append(recvcounts, cell(q, me))
			send = append(send, blk(me, q)...)
		}
		rtotal := 0
		for _, n := range recvcounts {
			rtotal += n
		}
		arecv := make([]byte, rtotal)
		if err := s.Alltoallv(send, sendcounts, nil, arecv, recvcounts, nil, gca.Uint8); err != nil {
			return err
		}
		pos = 0
		for q := 0; q < p; q++ {
			if !bytes.Equal(arecv[pos:pos+recvcounts[q]], blk(q, me)) {
				return fmt.Errorf("alltoallv block from %d mismatch at rank %d", q, me)
			}
			pos += recvcounts[q]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Each rank recorded one decision per tuned collective call (the two
	// Allgatherv layouts, ReduceScatterv, Alltoallv = 4 each), with the
	// shared selection size and a cross-rank-identical choice from the
	// operation's own ladder.
	snap := reg.Snapshot()
	byOp := map[string][]gca.Decision{}
	for _, d := range snap.Decisions {
		byOp[d.Op] = append(byOp[d.Op], d)
	}
	wantBytes := map[string]int{
		"MPI_Allgatherv":      4 * total,
		"MPI_Reduce_scatterv": 8 * total,
	}
	for op, n := range map[string]int{
		"MPI_Allgatherv": 2 * p, "MPI_Reduce_scatterv": p, "MPI_Alltoallv": p,
	} {
		ds := byOp[op]
		if len(ds) != n {
			t.Fatalf("%s: %d decisions, want %d", op, len(ds), n)
		}
		for _, d := range ds {
			if d.Alg == "" || (wantBytes[op] != 0 && d.Bytes != wantBytes[op]) {
				t.Errorf("%s decision %+v: want alg set, bytes %d", op, d, wantBytes[op])
			}
			if d.Alg != ds[0].Alg || d.K != ds[0].K {
				t.Errorf("%s: ranks disagree on selection: %+v vs %+v", op, d, ds[0])
			}
		}
	}
}

// TestSessionVCollFlight checks the flight recorder brackets every
// vector-collective Session call: the cross-rank analysis yields one
// instance per call, in order, with the session-level labels.
func TestSessionVCollFlight(t *testing.T) {
	const p = 4
	w := gca.NewLocalWorld(p)
	defer w.Close()
	counts := []int{2, 0, 3, 1}
	total := 6
	var (
		mu   sync.Mutex
		dump *gca.FlightDump
	)
	err := w.Run(func(c gca.Comm) error {
		s := gca.NewSession(c, gca.WithFlightRecorder(gca.FlightOptions{}))
		me := s.Rank()
		recv := make([]byte, 8*total)
		send := make([]byte, 8*counts[me])
		if err := s.Allgatherv(send, counts, nil, recv, gca.Float64); err != nil {
			return err
		}
		rs := make([]byte, 8*counts[me])
		if err := s.ReduceScatterv(make([]byte, 8*total), rs, counts, gca.Sum, gca.Float64); err != nil {
			return err
		}
		sc := make([]int, p)
		for q := range sc {
			sc[q] = 1
		}
		if err := s.Alltoallv(make([]byte, p), sc, nil, make([]byte, p), sc, nil, gca.Uint8); err != nil {
			return err
		}
		d, err := s.FlightDump()
		if err != nil {
			return err
		}
		if d != nil {
			mu.Lock()
			dump = d
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if dump == nil {
		t.Fatal("rank 0 received no dump")
	}
	a := dump.Analyze()
	if len(a.Instances) != 3 {
		t.Fatalf("analyzed %d instances, want 3", len(a.Instances))
	}
	for i, want := range []string{"allgatherv", "reduce_scatterv", "alltoallv"} {
		in := a.Instances[i]
		if in.Label != want {
			t.Errorf("instance %d label %q, want %q", i, in.Label, want)
		}
		if in.WallNs() <= 0 {
			t.Errorf("instance %d has non-positive wall time", i)
		}
	}
}

// TestSessionVCollValidation exercises the session-level argument checks:
// element counts whose byte total overflows, displacements outside the
// buffer, and an alltoallv count-matrix disagreement between ranks must
// all fail with ErrBadBuffer on every rank, without corrupting buffers.
func TestSessionVCollValidation(t *testing.T) {
	const p = 4
	w := gca.NewLocalWorld(p)
	defer w.Close()
	err := w.Run(func(c gca.Comm) error {
		s := gca.NewSession(c)
		me := s.Rank()

		over := []int{1, math.MaxInt / 4, math.MaxInt / 4, math.MaxInt / 4}
		if err := s.Allgatherv(nil, over, nil, nil, gca.Float64); !errors.Is(err, core.ErrBadBuffer) {
			return fmt.Errorf("overflowing counts: got %v, want ErrBadBuffer", err)
		}
		if err := s.ReduceScatterv(nil, nil, over, gca.Sum, gca.Float64); !errors.Is(err, core.ErrBadBuffer) {
			return fmt.Errorf("overflowing reduce-scatterv counts: got %v, want ErrBadBuffer", err)
		}

		counts := []int{1, 1, 1, 1}
		displs := []int{0, 1, 2, 9} // last block falls outside recvbuf
		recv := make([]byte, 8*p)
		send := make([]byte, 8)
		if err := s.Allgatherv(send, counts, displs, recv, gca.Float64); !errors.Is(err, core.ErrBadBuffer) {
			return fmt.Errorf("out-of-range displs: got %v, want ErrBadBuffer", err)
		}

		// Rank 2 claims to send more than the others expect: the count
		// exchange must detect the disagreement before any payload moves.
		sc := []int{1, 1, 1, 1}
		if me == 2 {
			sc = []int{2, 2, 2, 2}
		}
		sbuf := make([]byte, sc[0]*p)
		rbuf := make([]byte, p)
		if err := s.Alltoallv(sbuf, sc, nil, rbuf, []int{1, 1, 1, 1}, nil, gca.Uint8); !errors.Is(err, core.ErrBadBuffer) {
			return fmt.Errorf("count disagreement: got %v, want ErrBadBuffer", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
