package gca

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

// TestSessionLocalWorld drives every Session collective on the in-process
// world with the Frontier recommended configuration.
func TestSessionLocalWorld(t *testing.T) {
	const p = 8
	w := NewLocalWorld(p)
	err := w.Run(func(c Comm) error {
		s := NewSession(c, OnMachine(Frontier()))
		if s.Size() != p || s.Rank() != c.Rank() {
			return fmt.Errorf("geometry %d/%d", s.Rank(), s.Size())
		}
		// Allreduce.
		sum, err := s.AllreduceFloat64([]float64{1, float64(s.Rank())}, Sum)
		if err != nil {
			return err
		}
		if sum[0] != p || sum[1] != 28 {
			return fmt.Errorf("allreduce = %v", sum)
		}
		// Bcast.
		buf := make([]byte, 1000)
		if s.Rank() == 3 {
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		if err := s.Bcast(buf, 3); err != nil {
			return err
		}
		if buf[999] != byte(999%256) {
			return fmt.Errorf("bcast tail = %d", buf[999])
		}
		// Gather + Scatter + Allgather.
		mine := []byte{byte(s.Rank() + 1)}
		all := make([]byte, p)
		if err := s.Allgather(mine, all); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			if all[r] != byte(r+1) {
				return fmt.Errorf("allgather = %v", all)
			}
		}
		var gathered []byte
		if s.Rank() == 0 {
			gathered = make([]byte, p)
		}
		if err := s.Gather(mine, gathered, 0); err != nil {
			return err
		}
		if s.Rank() == 0 && !bytes.Equal(gathered, all) {
			return fmt.Errorf("gather = %v", gathered)
		}
		got := make([]byte, 1)
		if err := s.Scatter(gathered, got, 0); err != nil {
			return err
		}
		if got[0] != byte(s.Rank()+1) {
			return fmt.Errorf("scatter = %v", got)
		}
		// Reduce.
		recvbuf := make([]byte, 16)
		if err := s.Reduce(make([]byte, 16), recvbuf, Sum, Float64, 0); err != nil {
			return err
		}
		return s.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSessionReduceScatterAlltoall covers the remaining Session ops.
func TestSessionReduceScatterAlltoall(t *testing.T) {
	const p = 6
	w := NewLocalWorld(p)
	defer w.Close()
	err := w.Run(func(c Comm) error {
		s := NewSession(c, OnMachine(Frontier()))
		// Reduce-scatter of a 6-element vector: every element i sums to
		// 6*i + 15 (ranks contribute i + rank).
		elems := p
		vals := make([]float64, elems)
		for i := range vals {
			vals[i] = float64(i + s.Rank())
		}
		sendbuf := make([]byte, 8*elems)
		for i, v := range vals {
			copy(sendbuf[8*i:], encodeF64(v))
		}
		recvbuf := make([]byte, s.ReduceScatterBlockSize(len(sendbuf), Float64))
		if err := s.ReduceScatter(sendbuf, recvbuf, Sum, Float64); err != nil {
			return err
		}
		// Rank r's aligned fair block over 6 elements is element r.
		if got, want := decodeF64(recvbuf[:8]), float64(p*s.Rank()+15); got != want {
			return fmt.Errorf("rank %d reduce-scatter = %v, want %v", s.Rank(), got, want)
		}
		// Alltoall: rank r sends byte r*16+j to rank j.
		out := make([]byte, p)
		for j := range out {
			out[j] = byte(s.Rank()*16 + j)
		}
		in := make([]byte, p)
		if err := s.Alltoall(out, in); err != nil {
			return err
		}
		for src := range in {
			if in[src] != byte(src*16+s.Rank()) {
				return fmt.Errorf("alltoall block from %d = %d", src, in[src])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func encodeF64(v float64) []byte {
	b := make([]byte, 8)
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(bits >> (8 * i))
	}
	return b
}

func decodeF64(b []byte) float64 {
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(bits)
}

// TestSessionScan covers the prefix reductions through the facade.
func TestSessionScan(t *testing.T) {
	const p = 5
	w := NewLocalWorld(p)
	defer w.Close()
	err := w.Run(func(c Comm) error {
		s := NewSession(c, OnMachine(Frontier()))
		sendbuf := encodeF64(float64(s.Rank() + 1))
		recvbuf := make([]byte, 8)
		if err := s.Scan(sendbuf, recvbuf, Sum, Float64); err != nil {
			return err
		}
		r := s.Rank()
		if got, want := decodeF64(recvbuf), float64((r+1)*(r+2)/2); got != want {
			return fmt.Errorf("scan at rank %d = %v, want %v", r, got, want)
		}
		ex := make([]byte, 8)
		if err := s.Exscan(sendbuf, ex, Sum, Float64); err != nil {
			return err
		}
		if r > 0 {
			if got, want := decodeF64(ex), float64(r*(r+1)/2); got != want {
				return fmt.Errorf("exscan at rank %d = %v, want %v", r, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSessionOnSimulation runs a session on the simulator and checks a
// positive latency is observed.
func TestSessionOnSimulation(t *testing.T) {
	sim, err := NewSimulation(Polaris(), 16)
	if err != nil {
		t.Fatal(err)
	}
	err = sim.Run(func(c Comm) error {
		s := NewSession(c, OnMachine(Polaris()))
		_, err := s.AllreduceFloat64(make([]float64, 128), Sum)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Latency() <= 0 {
		t.Errorf("latency = %g", sim.Latency())
	}
}

// TestDefaultSession checks NewSession without options works.
func TestDefaultSession(t *testing.T) {
	w := NewLocalWorld(4)
	defer w.Close()
	err := w.Run(func(c Comm) error {
		s := NewSession(c)
		out, err := s.AllreduceFloat64([]float64{2}, Prod)
		if err != nil {
			return err
		}
		if out[0] != 16 {
			return fmt.Errorf("prod = %v", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
