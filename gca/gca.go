// Package gca is the public facade of the exacoll library: generalized
// collective algorithms (k-nomial, recursive multiplying, k-ring — from
// "Generalized Collective Algorithms for the Exascale Era", CLUSTER 2023)
// over pluggable transports.
//
// Quick start:
//
//	world := gca.NewLocalWorld(8)
//	world.Run(func(c gca.Comm) error {
//	    s := gca.NewSession(c, gca.OnMachine(gca.Frontier()))
//	    return s.Allreduce(sendbuf, recvbuf, gca.Sum, gca.Float64)
//	})
//
// A Session picks algorithms and radices through a selection table — by
// default the paper's recommended configuration for the machine (§VI-G) —
// or runs a specific algorithm when asked explicitly. The three substrates
// are the in-process world (NewLocalWorld), the machine simulator
// (NewSimulation), and TCP across OS processes (ConnectTCP).
package gca

import (
	"context"
	"fmt"
	"io"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/flight"
	"exacoll/internal/ft"
	"exacoll/internal/machine"
	"exacoll/internal/metrics"
	"exacoll/internal/nbc"
	"exacoll/internal/simnet"
	"exacoll/internal/topo"
	"exacoll/internal/trace"
	"exacoll/internal/transport/mem"
	"exacoll/internal/transport/tcp"
	"exacoll/internal/tuning"
)

// Core communication types.
type (
	// Comm is the communicator every rank drives.
	Comm = comm.Comm
	// Tag identifies a point-to-point message stream.
	Tag = comm.Tag
	// Request is a nonblocking-operation handle.
	Request = comm.Request
)

// Reduction operators.
const (
	Sum  = datatype.Sum
	Prod = datatype.Prod
	Max  = datatype.Max
	Min  = datatype.Min
	BAnd = datatype.BAnd
	BOr  = datatype.BOr
)

// Element types.
const (
	Uint8   = datatype.Uint8
	Int32   = datatype.Int32
	Int64   = datatype.Int64
	Float32 = datatype.Float32
	Float64 = datatype.Float64
)

// Op is a reduction operator.
type Op = datatype.Op

// Type is an element type.
type Type = datatype.Type

// Machine is a simulated machine description.
type Machine = machine.Spec

// WaitAll waits on every request and returns the first error.
func WaitAll(reqs ...Request) error { return comm.WaitAll(reqs...) }

// Frontier returns the Frontier machine model (ORNL; 4 NIC ports, 8 GPUs
// with Infinity Fabric per node).
func Frontier() Machine { return machine.Frontier() }

// Polaris returns the Polaris machine model (ANL; 2 NIC ports, 4 GPUs with
// NVLink per node).
func Polaris() Machine { return machine.Polaris() }

// LocalWorld hosts p ranks as goroutines in this process.
type LocalWorld struct{ w *mem.World }

// NewLocalWorld creates an in-process world of p ranks.
func NewLocalWorld(p int) *LocalWorld { return &LocalWorld{w: mem.NewWorld(p)} }

// Run executes fn once per rank concurrently and returns the first error.
func (l *LocalWorld) Run(fn func(c Comm) error) error { return l.w.Run(fn) }

// Comm returns rank r's communicator (drive it from one goroutine).
func (l *LocalWorld) Comm(r int) Comm { return l.w.Comm(r) }

// SetLocality declares a synthetic node layout for the in-process world —
// contiguous blocks of ppn ranks per "node" with the given NIC port count
// — so sessions created WithTopology can exercise hierarchical
// collectives without a multi-node machine. Call before creating
// sessions; ppn < 1 withdraws the layout.
func (l *LocalWorld) SetLocality(ppn, ports int) { l.w.SetLocality(ppn, ports) }

// RunAll executes fn once per rank concurrently and returns every rank's
// error. Unlike Run, one rank's failure does not tear the world down —
// the harness for fault-tolerance tests where survivors must continue.
func (l *LocalWorld) RunAll(fn func(c Comm) error) []error { return l.w.RunAll(fn) }

// Kill marks a rank as crashed: its pending receives abort, and every
// operation addressed to it fails with ErrPeerDead. Messages it had
// already sent remain deliverable. The chaos switch for fault-tolerance
// testing.
func (l *LocalWorld) Kill(rank int) { l.w.Kill(rank) }

// Close shuts the world down.
func (l *LocalWorld) Close() { l.w.Close() }

// Simulation hosts p ranks on a simulated machine with virtual time.
type Simulation struct{ s *simnet.Sim }

// NewSimulation creates a deterministic simulation of p ranks on m.
func NewSimulation(m Machine, p int) (*Simulation, error) {
	s, err := simnet.New(m, p)
	if err != nil {
		return nil, err
	}
	return &Simulation{s: s}, nil
}

// Run executes fn once per rank under the simulation kernel.
func (s *Simulation) Run(fn func(c Comm) error) error { return s.s.Run(fn) }

// Latency returns the maximum virtual completion time (seconds) of the
// most recent Run.
func (s *Simulation) Latency() float64 { return s.s.MaxTime() }

// ConnectTCP joins a multi-process world over TCP: rank 0 listens on addr,
// other ranks dial it (provide the same addr everywhere).
func ConnectTCP(rank, size int, addr string, timeout time.Duration) (Comm, error) {
	return tcp.Rendezvous(rank, size, addr, tcp.Options{Timeout: timeout})
}

// Observability types (see internal/metrics). One Metrics registry is
// shared by every rank's Session; Snapshot/export it from any goroutine.
type (
	// Metrics collects per-rank counters, wait-time histograms, and
	// selection-decision records for every Session created WithMetrics.
	Metrics = metrics.Registry
	// MetricsSnapshot is a deterministic copy of a Metrics registry.
	MetricsSnapshot = metrics.Snapshot
	// Decision is one selection-decision record: what the tuning table
	// chose for one collective call, and what it cost.
	Decision = metrics.Decision
)

// NewMetrics returns an empty metrics registry to share across ranks.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// TraceSink collects per-rank timeline events (see internal/trace). Wire
// one to a Metrics registry with SetSpanSink so every selection decision
// renders as a Chrome-trace slice alongside the sink's own events.
type TraceSink = trace.Sink

// NewTraceSink returns an empty trace sink. Attach it to a session's
// metrics registry with m.SetSpanSink(sink); export with
// sink.WriteChromeTrace.
func NewTraceSink() *TraceSink { return trace.NewSink() }

// Flight-recorder types (see internal/flight). The recorder is always-on
// and low-overhead: every point-to-point operation, reduction kernel,
// segment boundary, and collective bracket of a session created
// WithFlightRecorder lands in a fixed-size per-rank ring, ready to be
// collected into a cross-rank Dump at any time.
type (
	// FlightOptions configures the per-rank flight ring.
	FlightOptions = flight.Options
	// FlightDump is a cross-rank collection: every rank's ring snapshot
	// plus the clock alignment into rank 0's time base.
	FlightDump = flight.Dump
	// FlightAnalysis is the per-collective critical-path breakdown of a
	// dump (FlightDump.Analyze).
	FlightAnalysis = flight.Analysis
)

// ReadFlightDump parses a JSON flight dump (as written by
// FlightDump.WriteJSON or `gcarun -flight`).
func ReadFlightDump(r io.Reader) (*FlightDump, error) { return flight.ReadDump(r) }

// WriteFlightTrace renders a flight dump's merged global timeline as
// Chrome trace JSON (open in chrome://tracing or Perfetto).
func WriteFlightTrace(w io.Writer, d *FlightDump) error { return trace.WriteFlightTrace(w, d) }

// WriteFlightReport writes the plain-text per-collective report: wall
// time, critical-path category attribution, dominant hop, and straggler
// for every collective instance in the dump.
func WriteFlightReport(w io.Writer, d *FlightDump) error { return d.Analyze().WriteReport(w) }

// WriteMetricsPrometheus exports a snapshot in the Prometheus text format.
func WriteMetricsPrometheus(w io.Writer, s *MetricsSnapshot) error {
	return metrics.WritePrometheus(w, s)
}

// WriteMetricsJSON exports a snapshot as JSON.
func WriteMetricsJSON(w io.Writer, s *MetricsSnapshot) error {
	return metrics.WriteJSON(w, s)
}

// Fault-tolerance errors (see internal/ft). After an agreed collective
// failure every surviving rank's call returns an error wrapping
// ErrAborted; a rank the group declared dead gets ErrFenced and must stop
// using the session. ErrTimeout and ErrPeerDead are the transport-level
// causes they wrap.
var (
	ErrAborted  = ft.ErrAborted
	ErrFenced   = ft.ErrFenced
	ErrTimeout  = comm.ErrTimeout
	ErrPeerDead = comm.ErrPeerDead
)

// defaultFTTimeout bounds operations of a fault-tolerant session whose
// creator did not choose a deadline: without one, the error-agreement
// protocol could hang on a dead peer that the transport cannot detect.
const defaultFTTimeout = 10 * time.Second

// sessionConfig is the collected option set — kept on the session so
// Shrink can replay it onto the survivor communicator.
type sessionConfig struct {
	machine  *Machine
	table    *tuning.Table
	metrics  *metrics.Registry
	timeout  time.Duration
	retries  int
	backoff  time.Duration
	ft       bool
	topology bool
	flight   *flight.Options
	topoPPN  int   // force a synthetic contiguous layout instead of discovery
	epoch    int64 // inherited tag-space position across a Shrink
	seqBase  int64
}

// Session binds a communicator to an algorithm-selection policy.
type Session struct {
	base    Comm // the transport handed to NewSession (capability-bearing)
	c       Comm // fully wrapped: metrics(ft-epoch(base))
	tab     *tuning.Table
	metrics *metrics.Registry
	ft      *ft.State
	cfg     sessionConfig
	eng     *nbc.Engine  // lazily created by the first I<op> call
	topo    *topo.Engine // non-nil when WithTopology found a hierarchy
	topoMap *topo.Map
	flight  *flight.RankRecorder // non-nil with WithFlightRecorder
}

// SessionOption configures NewSession.
type SessionOption func(*sessionConfig)

// OnMachine selects algorithms using the paper's recommended configuration
// for the given machine (§VI-G guidelines).
func OnMachine(m Machine) SessionOption {
	return func(c *sessionConfig) { c.machine = &m }
}

// WithTable selects algorithms using a tuned table (e.g. produced by
// cmd/gcatune).
func WithTable(t *tuning.Table) SessionOption {
	return func(c *sessionConfig) { c.table = t }
}

// WithMetrics instruments the session's communicator so every send,
// receive, and collective call is recorded in m (share one registry
// across all ranks). Every collective issued through the session also
// records a selection-decision record naming the algorithm and radix
// actually run.
func WithMetrics(m *Metrics) SessionOption {
	return func(c *sessionConfig) { c.metrics = m }
}

// WithTimeout bounds every blocking operation of the session by d on
// transports that support deadlines (mem, tcp): a collective whose peer
// died or wedged fails with an error wrapping ErrTimeout instead of
// hanging. Use the *Ctx collective variants for per-call deadlines.
func WithTimeout(d time.Duration) SessionOption {
	return func(c *sessionConfig) { c.timeout = d }
}

// WithTopology makes the session topology-aware: node locality is
// discovered from the transport (comm.Locator — simnet knows its machine,
// tcp keys ranks by rendezvous host, LocalWorld.SetLocality declares a
// synthetic layout), the communicator is factored into node and leader
// levels, and Bcast, Reduce, Allgather, and Allreduce are lowered into
// per-level phases, each independently selecting its (algorithm, radix).
// Best effort: when the transport cannot report locality, or the layout
// is flat (one node, or one rank per node), the session transparently
// runs the flat tuned selection and Topology() returns nil.
func WithTopology() SessionOption {
	return func(c *sessionConfig) { c.topology = true }
}

// WithTopologyPPN is WithTopology with a declared layout instead of
// discovery: ranks are grouped into contiguous nodes of ppn. Use it when
// the transport has no locality source of its own.
func WithTopologyPPN(ppn int) SessionOption {
	return func(c *sessionConfig) {
		c.topology = true
		c.topoPPN = ppn
	}
}

// WithFlightRecorder turns on the always-on flight recorder: every
// point-to-point operation, reduction kernel, pipeline segment, and
// collective call of this session's rank is stamped into a fixed-size
// lock-free ring (overhead: one clock read and one ring store per event,
// no allocations — old events are overwritten once the ring fills).
// Collect the rings across ranks with Session.FlightDump, render with
// WriteFlightTrace/WriteFlightReport or `gcaviz flight`. The zero value
// of FlightOptions selects the default ring size.
func WithFlightRecorder(o FlightOptions) SessionOption {
	return func(c *sessionConfig) { c.flight = &o }
}

// WithFaultTolerance enables the ULFM-style protocol around every
// collective: after each call all ranks agree on the outcome, an agreed
// failure aborts the collective on every rank with ErrAborted (no
// split-brain), the collective tag epoch is retired and purged, and
// Shrink can rebuild a session over the survivors. Costs one small
// all-to-all exchange per collective; sessions without this option pay
// nothing.
func WithFaultTolerance() SessionOption {
	return func(c *sessionConfig) { c.ft = true }
}

// WithRetry makes fault-tolerant sessions transparently re-run idempotent
// collectives (Bcast, Gather, Scatter, Allgather, Alltoall, Barrier) up
// to n times after transient agreed failures — failures with no rank
// deaths, e.g. injected faults — sleeping backoff between attempts. The
// retry decision is made from the agreement verdict, so all ranks retry
// in lockstep. Implies WithFaultTolerance.
func WithRetry(n int, backoff time.Duration) SessionOption {
	return func(c *sessionConfig) {
		c.ft = true
		c.retries = n
		c.backoff = backoff
	}
}

// NewSession creates a session. Without options, the recommended
// configuration for a generic multi-port machine is used.
func NewSession(c Comm, opts ...SessionOption) *Session {
	var cfg sessionConfig
	for _, o := range opts {
		o(&cfg)
	}
	return newSession(c, cfg)
}

func newSession(c Comm, cfg sessionConfig) *Session {
	s := &Session{base: c, cfg: cfg}
	cur := c
	if cfg.ft {
		timeout := cfg.timeout
		if timeout == 0 {
			timeout = defaultFTTimeout
		}
		s.ft = ft.New(c, ft.Config{
			Timeout: timeout, Retries: cfg.retries, Backoff: cfg.backoff,
			Epoch: cfg.epoch, SeqBase: cfg.seqBase, Metrics: cfg.metrics,
		})
		cur = s.ft.Comm()
	} else if cfg.timeout > 0 {
		if dl, ok := c.(comm.Deadliner); ok {
			dl.SetOpTimeout(cfg.timeout)
		}
	}
	if cfg.metrics != nil {
		s.metrics = cfg.metrics
		cur = cfg.metrics.Instrument(cur)
	}
	if cfg.flight != nil {
		// Outermost wrapper: the ring sees every operation the session
		// issues, including FT agreement and metrics-counted traffic.
		cur = flight.NewRecorder(*cfg.flight).Wrap(cur)
	}
	s.c = cur
	s.flight = flight.RecorderOf(s.c)
	if s.ft != nil {
		// Agreement traffic flows through the instrumented comm too.
		s.ft.SetOuter(s.c)
	}
	switch {
	case cfg.table != nil:
		s.tab = cfg.table
	case cfg.machine != nil:
		s.tab = tuning.Recommended(*cfg.machine, c.Size())
	default:
		s.tab = tuning.Recommended(machine.Testbox(), c.Size())
	}
	if cfg.topology {
		s.buildTopology()
	}
	return s
}

// buildTopology factors the session communicator into its level tree and
// prepares the composition engine. Falls back to flat selection (engine
// nil) when no usable hierarchy exists; every rank reaches the same
// verdict because discovery is a pure function of shared transport state.
func (s *Session) buildTopology() {
	var m *topo.Map
	if s.cfg.topoPPN > 0 {
		um, err := topo.Uniform(s.c.Size(), s.cfg.topoPPN, 0)
		if err != nil {
			return
		}
		m = um
	} else {
		dm, ok := topo.Discover(s.c)
		if !ok {
			return
		}
		m = dm
	}
	if m.Flat() {
		return
	}
	eng, err := topo.NewEngine(s.c, m, topo.Config{Spec: s.cfg.machine, Metrics: s.metrics})
	if err != nil {
		return
	}
	s.topo = eng
	s.topoMap = m
}

// Topology describes which node hosts each rank of a topology-aware
// session (see internal/topo).
type Topology = topo.Map

// Topology returns the locality map of a session created WithTopology,
// or nil when topology awareness is off or no hierarchy was found.
func (s *Session) Topology() *Topology { return s.topoMap }

// opTimeout is the session's effective per-op deadline (0 = unbounded).
func (s *Session) opTimeout() time.Duration {
	if s.cfg.ft && s.cfg.timeout == 0 {
		return defaultFTTimeout
	}
	return s.cfg.timeout
}

// run routes one blocking collective through the fault-tolerance protocol
// when enabled; without WithFaultTolerance it is a direct call.
func (s *Session) run(idempotent bool, fn func() error) error {
	if s.ft == nil {
		return fn()
	}
	return s.ft.RunCollective(idempotent, fn)
}

// coll is run plus the session-level flight bracket: one
// EvCollBegin/EvCollEnd pair per user-facing collective call, wrapping
// every retry, agreement round, and (for topology-aware sessions) every
// per-level phase. The analysis pairs these outermost brackets across
// ranks; the nested tuning-level bracket underneath names the algorithm
// actually run. The bracket closes on error too, so failed collectives
// still appear on the timeline.
func (s *Session) coll(name string, op core.CollOp, nbytes int, idempotent bool, fn func() error) error {
	if s.flight == nil {
		return s.run(idempotent, fn)
	}
	var epoch int64
	if s.ft != nil {
		epoch = s.ft.Epoch()
	}
	arg := flight.PackColl(s.flight.LabelID(name), int(op), 0, epoch)
	s.flight.Record(flight.EvCollBegin, -1, 0, nbytes, arg)
	err := s.run(idempotent, fn)
	s.flight.Record(flight.EvCollEnd, -1, 0, nbytes, arg)
	return err
}

// withCtx applies ctx's deadline as the per-op timeout for one collective
// call, restoring the session-wide setting afterwards. Cancellation
// without a deadline is only observed at the call boundary (transports
// block on their own deadlines, not on ctx).
func (s *Session) withCtx(ctx context.Context, fn func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if deadline, ok := ctx.Deadline(); ok {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return context.DeadlineExceeded
		}
		if dl, okDL := s.base.(comm.Deadliner); okDL {
			dl.SetOpTimeout(remaining)
			defer dl.SetOpTimeout(s.opTimeout())
		}
	}
	return fn()
}

// Shrink agrees on the survivor set with every other living rank and
// returns a new session over a dense sub-communicator of the survivors,
// carrying over the session's options (table, metrics, timeout, retry)
// and its collective tag-space position, so stragglers addressed to the
// old world can never corrupt the new one. Every surviving rank must call
// Shrink collectively. A rank the group declared dead gets ErrFenced. The
// parent session must not be used afterwards.
func (s *Session) Shrink() (*Session, error) {
	if s.ft == nil {
		return nil, fmt.Errorf("gca: Shrink requires WithFaultTolerance")
	}
	survivors, err := s.ft.Survivors()
	if err != nil {
		return nil, err
	}
	sub, err := comm.NewSub(s.base, survivors)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg
	cfg.epoch = s.ft.Epoch()
	cfg.seqBase = s.ft.Seq()
	return newSession(sub, cfg), nil
}

// Comm returns the underlying communicator for point-to-point use (the
// instrumented wrapper when the session was created WithMetrics, so
// point-to-point traffic is counted too).
func (s *Session) Comm() Comm { return s.c }

// Metrics returns the session's registry (nil without WithMetrics).
func (s *Session) Metrics() *Metrics { return s.metrics }

// Snapshot returns current telemetry for the whole world (the shared
// registry covers every rank). Without WithMetrics it returns an empty
// snapshot.
func (s *Session) Snapshot() *MetricsSnapshot {
	if s.metrics == nil {
		return metrics.NewRegistry().Snapshot()
	}
	return s.metrics.Snapshot()
}

// FlightDump collects every rank's flight ring over the communicator and
// aligns the per-rank clocks into rank 0's time base (Cristian's
// algorithm, best-of-8 probes; exact on virtual-clock substrates).
// Collective: every rank must call it, like a Barrier. The dump returns
// on rank 0; other ranks return (nil, nil). Requires WithFlightRecorder.
func (s *Session) FlightDump() (*FlightDump, error) {
	if s.flight == nil {
		return nil, fmt.Errorf("gca: FlightDump requires WithFlightRecorder")
	}
	return flight.Collect(s.c, s.flight, flight.CollectOptions{})
}

// Rank returns the caller's rank.
func (s *Session) Rank() int { return s.c.Rank() }

// Size returns the communicator size.
func (s *Session) Size() int { return s.c.Size() }

// Bcast broadcasts buf from root to every rank.
func (s *Session) Bcast(buf []byte, root int) error {
	return s.coll("bcast", core.OpBcast, len(buf), true, func() error {
		if s.topo != nil {
			return s.topo.Bcast(buf, root)
		}
		return s.tab.Run(s.c, core.OpBcast, core.Args{SendBuf: buf, Root: root})
	})
}

// BcastCtx is Bcast bounded by ctx's deadline.
func (s *Session) BcastCtx(ctx context.Context, buf []byte, root int) error {
	return s.withCtx(ctx, func() error { return s.Bcast(buf, root) })
}

// Reduce combines every rank's sendbuf into recvbuf at root.
func (s *Session) Reduce(sendbuf, recvbuf []byte, op Op, t Type, root int) error {
	return s.coll("reduce", core.OpReduce, len(sendbuf), false, func() error {
		if s.topo != nil {
			return s.topo.Reduce(sendbuf, recvbuf, op, t, root)
		}
		return s.tab.Run(s.c, core.OpReduce, core.Args{
			SendBuf: sendbuf, RecvBuf: recvbuf, Op: op, Type: t, Root: root})
	})
}

// ReduceCtx is Reduce bounded by ctx's deadline.
func (s *Session) ReduceCtx(ctx context.Context, sendbuf, recvbuf []byte, op Op, t Type, root int) error {
	return s.withCtx(ctx, func() error { return s.Reduce(sendbuf, recvbuf, op, t, root) })
}

// Allreduce combines every rank's sendbuf into every rank's recvbuf.
func (s *Session) Allreduce(sendbuf, recvbuf []byte, op Op, t Type) error {
	return s.coll("allreduce", core.OpAllreduce, len(sendbuf), false, func() error {
		if s.topo != nil {
			return s.topo.Allreduce(sendbuf, recvbuf, op, t)
		}
		return s.tab.Run(s.c, core.OpAllreduce, core.Args{
			SendBuf: sendbuf, RecvBuf: recvbuf, Op: op, Type: t})
	})
}

// AllreduceCtx is Allreduce bounded by ctx's deadline.
func (s *Session) AllreduceCtx(ctx context.Context, sendbuf, recvbuf []byte, op Op, t Type) error {
	return s.withCtx(ctx, func() error { return s.Allreduce(sendbuf, recvbuf, op, t) })
}

// Gather collects every rank's sendbuf into recvbuf (len(sendbuf)·p) at
// root.
func (s *Session) Gather(sendbuf, recvbuf []byte, root int) error {
	return s.coll("gather", core.OpGather, len(sendbuf), true, func() error {
		return s.tab.Run(s.c, core.OpGather, core.Args{
			SendBuf: sendbuf, RecvBuf: recvbuf, Root: root})
	})
}

// GatherCtx is Gather bounded by ctx's deadline.
func (s *Session) GatherCtx(ctx context.Context, sendbuf, recvbuf []byte, root int) error {
	return s.withCtx(ctx, func() error { return s.Gather(sendbuf, recvbuf, root) })
}

// Scatter distributes root's sendbuf (len(recvbuf)·p) so each rank gets
// its block in recvbuf.
func (s *Session) Scatter(sendbuf, recvbuf []byte, root int) error {
	return s.coll("scatter", core.OpScatter, len(recvbuf), true, func() error {
		return s.tab.Run(s.c, core.OpScatter, core.Args{
			SendBuf: sendbuf, RecvBuf: recvbuf, Root: root})
	})
}

// ScatterCtx is Scatter bounded by ctx's deadline.
func (s *Session) ScatterCtx(ctx context.Context, sendbuf, recvbuf []byte, root int) error {
	return s.withCtx(ctx, func() error { return s.Scatter(sendbuf, recvbuf, root) })
}

// Allgather collects every rank's sendbuf into every rank's recvbuf
// (len(sendbuf)·p).
func (s *Session) Allgather(sendbuf, recvbuf []byte) error {
	return s.coll("allgather", core.OpAllgather, len(sendbuf), true, func() error {
		if s.topo != nil {
			return s.topo.Allgather(sendbuf, recvbuf)
		}
		return s.tab.Run(s.c, core.OpAllgather, core.Args{
			SendBuf: sendbuf, RecvBuf: recvbuf})
	})
}

// AllgatherCtx is Allgather bounded by ctx's deadline.
func (s *Session) AllgatherCtx(ctx context.Context, sendbuf, recvbuf []byte) error {
	return s.withCtx(ctx, func() error { return s.Allgather(sendbuf, recvbuf) })
}

// ReduceScatter reduces every rank's full sendbuf and scatters the result:
// each rank receives its element-aligned fair block in recvbuf (use
// ReduceScatterBlockSize to size it).
func (s *Session) ReduceScatter(sendbuf, recvbuf []byte, op Op, t Type) error {
	return s.coll("reduce_scatter", core.OpReduceScatter, len(sendbuf), false, func() error {
		return s.tab.Run(s.c, core.OpReduceScatter, core.Args{
			SendBuf: sendbuf, RecvBuf: recvbuf, Op: op, Type: t})
	})
}

// ReduceScatterCtx is ReduceScatter bounded by ctx's deadline.
func (s *Session) ReduceScatterCtx(ctx context.Context, sendbuf, recvbuf []byte, op Op, t Type) error {
	return s.withCtx(ctx, func() error { return s.ReduceScatter(sendbuf, recvbuf, op, t) })
}

// ReduceScatterBlockSize returns the size in bytes of rank's result block
// for a ReduceScatter over an n-byte vector of the given element type.
func (s *Session) ReduceScatterBlockSize(n int, t Type) int {
	_, sz := core.FairLayoutAligned(n, s.c.Size(), t.Size())(s.c.Rank())
	return sz
}

// Alltoall exchanges personalized blocks: sendbuf and recvbuf both hold p
// blocks of len(sendbuf)/p bytes; block j of sendbuf goes to rank j and
// block j of recvbuf comes from rank j.
func (s *Session) Alltoall(sendbuf, recvbuf []byte) error {
	return s.coll("alltoall", core.OpAlltoall, len(sendbuf), true, func() error {
		return s.tab.Run(s.c, core.OpAlltoall, core.Args{
			SendBuf: sendbuf, RecvBuf: recvbuf})
	})
}

// AlltoallCtx is Alltoall bounded by ctx's deadline.
func (s *Session) AlltoallCtx(ctx context.Context, sendbuf, recvbuf []byte) error {
	return s.withCtx(ctx, func() error { return s.Alltoall(sendbuf, recvbuf) })
}

// Scan computes the inclusive prefix reduction: rank r receives the
// combination of ranks 0..r.
func (s *Session) Scan(sendbuf, recvbuf []byte, op Op, t Type) error {
	return s.coll("scan", core.OpScan, len(sendbuf), false, func() error {
		return s.tab.Run(s.c, core.OpScan, core.Args{
			SendBuf: sendbuf, RecvBuf: recvbuf, Op: op, Type: t})
	})
}

// ScanCtx is Scan bounded by ctx's deadline.
func (s *Session) ScanCtx(ctx context.Context, sendbuf, recvbuf []byte, op Op, t Type) error {
	return s.withCtx(ctx, func() error { return s.Scan(sendbuf, recvbuf, op, t) })
}

// Exscan computes the exclusive prefix reduction: rank r receives the
// combination of ranks 0..r−1 (rank 0's recvbuf is untouched, as in MPI).
func (s *Session) Exscan(sendbuf, recvbuf []byte, op Op, t Type) error {
	return s.coll("exscan", core.OpScan, len(sendbuf), false, func() error {
		return core.Exscan(s.c, sendbuf, recvbuf, op, t)
	})
}

// ExscanCtx is Exscan bounded by ctx's deadline.
func (s *Session) ExscanCtx(ctx context.Context, sendbuf, recvbuf []byte, op Op, t Type) error {
	return s.withCtx(ctx, func() error { return s.Exscan(sendbuf, recvbuf, op, t) })
}

// Barrier synchronizes all ranks.
func (s *Session) Barrier() error {
	return s.coll("barrier", core.OpBcast, 0, true, func() error { return core.BarrierDissemination(s.c) })
}

// BarrierCtx is Barrier bounded by ctx's deadline.
func (s *Session) BarrierCtx(ctx context.Context) error {
	return s.withCtx(ctx, s.Barrier)
}

// AllreduceFloat64 is a convenience wrapper over Allreduce for float64
// vectors (the dominant use in data-parallel training).
func (s *Session) AllreduceFloat64(vals []float64, op Op) ([]float64, error) {
	sendbuf := datatype.EncodeFloat64(vals)
	recvbuf := make([]byte, len(sendbuf))
	if err := s.Allreduce(sendbuf, recvbuf, op, Float64); err != nil {
		return nil, err
	}
	return datatype.DecodeFloat64(recvbuf), nil
}
