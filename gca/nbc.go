package gca

// Nonblocking collectives — the MPI-3 I<op> family. Each I<op> call
// compiles the collective into a per-rank schedule (internal/nbc), using
// the same tuning-table selection as its blocking counterpart, and starts
// it on the session's progress engine. The returned CollRequest completes
// through Wait or Test; while blocked in Wait, the engine drives every
// outstanding collective of the session, so several can be in flight at
// once and overlap with compute between Start and Wait.
//
// Two rules carry over from MPI-3:
//
//   - every rank of the communicator must issue nonblocking collectives
//     in the same order (that shared order assigns the disjoint tag
//     sub-ranges that keep concurrent collectives from cross-matching);
//   - a collective's buffers belong to the library until its request
//     completes: don't write send buffers or read receive buffers before
//     Wait/Test reports done.
//
// Results are bit-identical to the blocking counterpart when the selected
// algorithm is one of the generalized families (k-nomial, recursive
// multiplying, k-ring); see internal/nbc for the exactness caveats of the
// remaining fallback lowerings.

import (
	"exacoll/internal/core"
	"exacoll/internal/nbc"
)

// CollRequest is the handle of one in-flight nonblocking collective.
// Wait blocks until completion (MPI_Wait); Test polls without blocking
// (MPI_Test). Both drive every outstanding collective of the session.
type CollRequest = *nbc.Request

// WaitAllColl waits on every collective request and returns the joined
// errors — the MPI_Waitall of nonblocking collectives.
func WaitAllColl(reqs ...CollRequest) error { return nbc.WaitAll(reqs...) }

// engine returns the session's progress engine, creating it on first use.
// Like the session's communicator, it is driven from the owning rank's
// goroutine only.
func (s *Session) engine() *nbc.Engine {
	if s.eng == nil {
		s.eng = nbc.NewEngine(s.c)
	}
	return s.eng
}

// istart compiles and launches one nonblocking collective.
func (s *Session) istart(op core.CollOp, a core.Args) (CollRequest, error) {
	prog, err := nbc.Compile(s.c, s.tab, op, a)
	if err != nil {
		return nil, err
	}
	return s.engine().Start(prog)
}

// IBcast starts a nonblocking broadcast of buf from root.
func (s *Session) IBcast(buf []byte, root int) (CollRequest, error) {
	return s.istart(core.OpBcast, core.Args{SendBuf: buf, Root: root})
}

// IReduce starts a nonblocking reduction of every rank's sendbuf into
// recvbuf at root.
func (s *Session) IReduce(sendbuf, recvbuf []byte, op Op, t Type, root int) (CollRequest, error) {
	return s.istart(core.OpReduce, core.Args{
		SendBuf: sendbuf, RecvBuf: recvbuf, Op: op, Type: t, Root: root})
}

// IAllreduce starts a nonblocking allreduce of sendbuf into recvbuf.
func (s *Session) IAllreduce(sendbuf, recvbuf []byte, op Op, t Type) (CollRequest, error) {
	return s.istart(core.OpAllreduce, core.Args{
		SendBuf: sendbuf, RecvBuf: recvbuf, Op: op, Type: t})
}

// IAllgather starts a nonblocking allgather of every rank's sendbuf into
// recvbuf (len(sendbuf)·p).
func (s *Session) IAllgather(sendbuf, recvbuf []byte) (CollRequest, error) {
	return s.istart(core.OpAllgather, core.Args{SendBuf: sendbuf, RecvBuf: recvbuf})
}

// IReduceScatter starts a nonblocking reduce-scatter: recvbuf receives the
// caller's element-aligned fair block (size it with ReduceScatterBlockSize).
func (s *Session) IReduceScatter(sendbuf, recvbuf []byte, op Op, t Type) (CollRequest, error) {
	return s.istart(core.OpReduceScatter, core.Args{
		SendBuf: sendbuf, RecvBuf: recvbuf, Op: op, Type: t})
}
