package gca

import (
	"context"
	"encoding/binary"
	"fmt"

	"exacoll/internal/core"
)

// vcollBytes scales a per-rank element-count vector by the datatype size
// (rejecting overflow) and returns the byte counts, their prefix offsets
// into a packed buffer, and the packed total.
func vcollBytes(counts []int, t Type) (bcounts, off []int, total int, err error) {
	bcounts, err = core.ScaleCounts(counts, t)
	if err != nil {
		return nil, nil, 0, err
	}
	off = make([]int, len(bcounts)+1)
	for i, n := range bcounts {
		off[i+1] = off[i] + n
	}
	return bcounts, off, off[len(bcounts)], nil
}

// checkDispls validates that every displaced block fits inside buf:
// displs[r] is an element offset, bcounts[r] a byte length.
func checkDispls(displs, bcounts []int, t Type, buf []byte) error {
	if len(displs) != len(bcounts) {
		return fmt.Errorf("gca: %d displacements for %d counts: %w",
			len(displs), len(bcounts), core.ErrBadBuffer)
	}
	for r, d := range displs {
		if d < 0 || d > (len(buf)-bcounts[r])/t.Size() {
			return fmt.Errorf("gca: rank %d block [%d elems + %d bytes] outside %d-byte buffer: %w",
				r, d, bcounts[r], len(buf), core.ErrBadBuffer)
		}
	}
	return nil
}

// Allgatherv collects variable-sized contributions: rank r contributes
// counts[r] elements of type t (len(sendbuf) = counts[r]·size bytes on
// rank r) and every rank receives all contributions. counts is in
// elements and must be identical on every rank — selection, like the
// algorithms themselves, keys on the shared count total, so skewed
// per-rank sizes can never split the ranks' algorithm choice. With displs
// nil the blocks land packed in rank order; otherwise block r is placed
// at element offset displs[r] of recvbuf.
func (s *Session) Allgatherv(sendbuf []byte, counts, displs []int, recvbuf []byte, t Type) error {
	bcounts, off, total, err := vcollBytes(counts, t)
	if err != nil {
		return err
	}
	return s.coll("allgatherv", core.OpAllgatherv, total, true, func() error {
		if displs == nil {
			return s.tab.Run(s.c, core.OpAllgatherv, core.Args{
				SendBuf: sendbuf, RecvBuf: recvbuf, Counts: bcounts})
		}
		if err := checkDispls(displs, bcounts, t, recvbuf); err != nil {
			return err
		}
		packed := make([]byte, total)
		if err := s.tab.Run(s.c, core.OpAllgatherv, core.Args{
			SendBuf: sendbuf, RecvBuf: packed, Counts: bcounts}); err != nil {
			return err
		}
		for r, d := range displs {
			copy(recvbuf[d*t.Size():d*t.Size()+bcounts[r]], packed[off[r]:off[r+1]])
		}
		return nil
	})
}

// AllgathervCtx is Allgatherv bounded by ctx's deadline.
func (s *Session) AllgathervCtx(ctx context.Context, sendbuf []byte, counts, displs []int, recvbuf []byte, t Type) error {
	return s.withCtx(ctx, func() error { return s.Allgatherv(sendbuf, counts, displs, recvbuf, t) })
}

// ReduceScatterv reduces every rank's full sendbuf element-wise and
// scatters the result by the shared counts vector: rank r receives the
// counts[r] elements starting at element sum(counts[:r]) of the reduced
// vector. counts is in elements and identical on every rank;
// len(sendbuf) covers the full vector, len(recvbuf) = counts[rank]·size.
func (s *Session) ReduceScatterv(sendbuf, recvbuf []byte, counts []int, op Op, t Type) error {
	bcounts, _, total, err := vcollBytes(counts, t)
	if err != nil {
		return err
	}
	return s.coll("reduce_scatterv", core.OpReduceScatterv, total, false, func() error {
		return s.tab.Run(s.c, core.OpReduceScatterv, core.Args{
			SendBuf: sendbuf, RecvBuf: recvbuf, Counts: bcounts, Op: op, Type: t})
	})
}

// ReduceScattervCtx is ReduceScatterv bounded by ctx's deadline.
func (s *Session) ReduceScattervCtx(ctx context.Context, sendbuf, recvbuf []byte, counts []int, op Op, t Type) error {
	return s.withCtx(ctx, func() error { return s.ReduceScatterv(sendbuf, recvbuf, counts, op, t) })
}

// Alltoallv exchanges fully personalized variable-sized blocks:
// sendcounts[q] elements of type t go to rank q (read from element offset
// sdispls[q], or packed in rank order when sdispls is nil), and
// recvcounts[q] elements arrive from rank q (placed at element offset
// rdispls[q], or packed when rdispls is nil). Unlike the shared counts of
// Allgatherv, each rank passes only its own send/recv rows — the session
// assembles the global count matrix with a fixed-size allgather, then
// verifies the peers' declared sends match recvcounts before moving
// payload, so a count disagreement fails fast instead of corrupting
// buffers.
func (s *Session) Alltoallv(sendbuf []byte, sendcounts, sdispls []int, recvbuf []byte, recvcounts, rdispls []int, t Type) error {
	p := s.c.Size()
	me := s.c.Rank()
	if len(sendcounts) != p || len(recvcounts) != p {
		return fmt.Errorf("gca: alltoallv wants %d send and recv counts, got %d and %d: %w",
			p, len(sendcounts), len(recvcounts), core.ErrBadBuffer)
	}
	sb, soff, stotal, err := vcollBytes(sendcounts, t)
	if err != nil {
		return err
	}
	rb, roff, rtotal, err := vcollBytes(recvcounts, t)
	if err != nil {
		return err
	}
	return s.coll("alltoallv", core.OpAlltoallv, stotal+rtotal, true, func() error {
		// Assemble the global element-count matrix: one fixed-size
		// allgather of each rank's row, int64-encoded.
		row := make([]byte, 8*p)
		for q, n := range sendcounts {
			binary.LittleEndian.PutUint64(row[q*8:], uint64(n))
		}
		all := make([]byte, 8*p*p)
		if err := core.AllgatherBruck(s.c, row, all); err != nil {
			return err
		}
		m := make([]int, p*p)
		for i := range m {
			m[i] = int(binary.LittleEndian.Uint64(all[i*8:]))
		}
		for q := 0; q < p; q++ {
			if m[q*p+me] != recvcounts[q] {
				return fmt.Errorf("gca: rank %d declares %d elements for us, recvcounts[%d] = %d: %w",
					q, m[q*p+me], q, recvcounts[q], core.ErrBadBuffer)
			}
		}
		mb, err := core.ScaleCounts(m, t)
		if err != nil {
			return err
		}

		send := sendbuf
		if sdispls != nil {
			if err := checkDispls(sdispls, sb, t, sendbuf); err != nil {
				return err
			}
			send = make([]byte, stotal)
			for q, d := range sdispls {
				copy(send[soff[q]:soff[q+1]], sendbuf[d*t.Size():d*t.Size()+sb[q]])
			}
		}
		recv := recvbuf
		if rdispls != nil {
			if err := checkDispls(rdispls, rb, t, recvbuf); err != nil {
				return err
			}
			recv = make([]byte, rtotal)
		}
		if err := s.tab.Run(s.c, core.OpAlltoallv, core.Args{
			SendBuf: send, RecvBuf: recv, Counts: mb}); err != nil {
			return err
		}
		if rdispls != nil {
			for q, d := range rdispls {
				copy(recvbuf[d*t.Size():d*t.Size()+rb[q]], recv[roff[q]:roff[q+1]])
			}
		}
		return nil
	})
}

// AlltoallvCtx is Alltoallv bounded by ctx's deadline.
func (s *Session) AlltoallvCtx(ctx context.Context, sendbuf []byte, sendcounts, sdispls []int, recvbuf []byte, recvcounts, rdispls []int, t Type) error {
	return s.withCtx(ctx, func() error {
		return s.Alltoallv(sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls, t)
	})
}
