package gca_test

import (
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"exacoll/gca"
)

func elasticFreeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func encF64(vals ...float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func decF64(buf []byte) []float64 {
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}

// verifyCollectives runs every Table I collective through the session and
// checks bit-exact results (integer-valued float64 sums are exact in IEEE
// arithmetic, so == is the right comparison). One call per rank,
// concurrently — the caller drives each session from its own goroutine.
func verifyCollectives(s *gca.Session) error {
	p, me := s.Size(), s.Rank()
	total := float64(p*(p+1)) / 2

	buf := make([]byte, 16)
	if me == 0 {
		for i := range buf {
			buf[i] = byte(i + 1)
		}
	}
	if err := s.Bcast(buf, 0); err != nil {
		return fmt.Errorf("bcast: %w", err)
	}
	for i := range buf {
		if buf[i] != byte(i+1) {
			return fmt.Errorf("bcast[%d] = %d, want %d", i, buf[i], i+1)
		}
	}

	red := make([]byte, 8)
	if err := s.Reduce(encF64(float64(me+1)), red, gca.Sum, gca.Float64, 0); err != nil {
		return fmt.Errorf("reduce: %w", err)
	}
	if me == 0 && decF64(red)[0] != total {
		return fmt.Errorf("reduce = %v, want %v", decF64(red)[0], total)
	}

	got, err := s.AllreduceFloat64([]float64{float64(me + 1)}, gca.Sum)
	if err != nil {
		return fmt.Errorf("allreduce: %w", err)
	}
	if got[0] != total {
		return fmt.Errorf("allreduce = %v, want %v", got[0], total)
	}

	gat := make([]byte, 4*p)
	if err := s.Gather([]byte{byte(me), byte(me), byte(me), byte(me)}, gat, 0); err != nil {
		return fmt.Errorf("gather: %w", err)
	}
	if me == 0 {
		for j := 0; j < p; j++ {
			if gat[4*j] != byte(j) {
				return fmt.Errorf("gather block %d = %d", j, gat[4*j])
			}
		}
	}

	var scat []byte
	if me == 0 {
		scat = make([]byte, 4*p)
		for j := 0; j < p; j++ {
			for k := 0; k < 4; k++ {
				scat[4*j+k] = byte(j)
			}
		}
	}
	mine := make([]byte, 4)
	if err := s.Scatter(scat, mine, 0); err != nil {
		return fmt.Errorf("scatter: %w", err)
	}
	if mine[0] != byte(me) || mine[3] != byte(me) {
		return fmt.Errorf("scatter block = %v, want rank %d", mine, me)
	}

	ag := make([]byte, 4*p)
	if err := s.Allgather([]byte{byte(me), byte(me), byte(me), byte(me)}, ag); err != nil {
		return fmt.Errorf("allgather: %w", err)
	}
	for j := 0; j < p; j++ {
		if ag[4*j] != byte(j) {
			return fmt.Errorf("allgather block %d = %d", j, ag[4*j])
		}
	}

	vec := make([]float64, p)
	for i := range vec {
		vec[i] = float64(me + 1)
	}
	rs := make([]byte, s.ReduceScatterBlockSize(8*p, gca.Float64))
	if err := s.ReduceScatter(encF64(vec...), rs, gca.Sum, gca.Float64); err != nil {
		return fmt.Errorf("reduce_scatter: %w", err)
	}
	for i, v := range decF64(rs) {
		if v != total {
			return fmt.Errorf("reduce_scatter[%d] = %v, want %v", i, v, total)
		}
	}

	a2aSend := make([]byte, 8*p)
	for j := 0; j < p; j++ {
		for k := 0; k < 8; k++ {
			a2aSend[8*j+k] = byte(me*p + j)
		}
	}
	a2aRecv := make([]byte, 8*p)
	if err := s.Alltoall(a2aSend, a2aRecv); err != nil {
		return fmt.Errorf("alltoall: %w", err)
	}
	for j := 0; j < p; j++ {
		if a2aRecv[8*j] != byte(j*p+me) {
			return fmt.Errorf("alltoall block %d = %d, want %d", j, a2aRecv[8*j], j*p+me)
		}
	}

	scan := make([]byte, 8)
	if err := s.Scan(encF64(float64(me+1)), scan, gca.Sum, gca.Float64); err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	if want := float64((me + 1) * (me + 2) / 2); decF64(scan)[0] != want {
		return fmt.Errorf("scan = %v, want %v", decF64(scan)[0], want)
	}

	if err := s.Barrier(); err != nil {
		return fmt.Errorf("barrier: %w", err)
	}
	return nil
}

// elasticOpts is the session option set every member of the elastic world
// uses — identical everywhere, like an MPI world's configuration.
func elasticOpts() []gca.SessionOption {
	return []gca.SessionOption{gca.WithFaultTolerance(), gca.WithTimeout(2 * time.Second)}
}

// forEachSession drives fn once per session concurrently and reports every
// rank's error.
func forEachSession(t *testing.T, sessions []*gca.Session, what string, fn func(s *gca.Session) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(sessions))
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *gca.Session) {
			defer wg.Done()
			errs[i] = fn(s)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: rank %d: %v", what, i, err)
		}
	}
}

// TestElasticGrowShrinkRejoin is the end-to-end elastic lifecycle over real
// TCP: start at p=4, grow to 8, kill a rank, shrink to 7, rejoin to 8 —
// with every Table I collective verified bit-exact at every membership.
func TestElasticGrowShrinkRejoin(t *testing.T) {
	addr := elasticFreeAddr(t)
	const timeout = 10 * time.Second

	// Found the world at p=4 (transport epoch 0).
	comms := make([]*gca.ElasticComm, 4)
	{
		errs := make([]error, 4)
		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				comms[r], errs[r] = gca.ConnectElastic(r, 4, addr, 8, timeout)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("connect rank %d: %v", r, err)
			}
		}
	}
	anchor := comms[0]
	live := map[*gca.ElasticComm]bool{}
	for _, c := range comms {
		live[c] = true
	}
	defer func() {
		for c, on := range live {
			if on {
				c.Close()
			}
		}
	}()

	// startJoins parks n admission requests at the anchor; each JoinElastic
	// only returns once the incumbents Grow, so results are collected later.
	startJoins := func(n int) chan *gca.ElasticComm {
		joined := make(chan *gca.ElasticComm, n)
		for i := 0; i < n; i++ {
			go func() {
				m, err := gca.JoinElastic(addr, timeout)
				if err != nil {
					t.Errorf("join: %v", err)
					joined <- nil
					return
				}
				joined <- m
			}()
		}
		return joined
	}
	waitPending := func(n int) {
		t.Helper()
		for i := 0; anchor.PendingJoins() < n && i < 500; i++ {
			time.Sleep(10 * time.Millisecond)
		}
		if got := anchor.PendingJoins(); got < n {
			t.Fatalf("pending joins = %d, want %d", got, n)
		}
	}
	// grow runs Grow on every incumbent session while the parked joiners
	// complete their rendezvous, then builds the joiners' sessions and
	// returns the new world's sessions indexed by rank.
	grow := func(old []*gca.Session, joined chan *gca.ElasticComm, nJoin, newSize int) []*gca.Session {
		t.Helper()
		next := make([]*gca.Session, newSize)
		var mu sync.Mutex
		var wg sync.WaitGroup
		errs := make([]error, len(old))
		for i, s := range old {
			wg.Add(1)
			go func(i int, s *gca.Session) {
				defer wg.Done()
				ns, err := s.Grow()
				if err != nil {
					errs[i] = err
					return
				}
				mu.Lock()
				next[ns.Rank()] = ns
				mu.Unlock()
			}(i, s)
		}
		for i := 0; i < nJoin; i++ {
			m := <-joined
			if m == nil {
				t.FailNow()
			}
			live[m] = true
			next[m.Rank()] = gca.NewSession(m, elasticOpts()...)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("grow: old rank %d: %v", i, err)
			}
		}
		for r, s := range next {
			if s == nil {
				t.Fatalf("no session landed at rank %d", r)
			}
		}
		return next
	}

	sessions := make([]*gca.Session, 4)
	for r := range sessions {
		sessions[r] = gca.NewSession(comms[r], elasticOpts()...)
	}
	forEachSession(t, sessions, "p=4 collectives", verifyCollectives)

	// Grow 4 -> 8.
	joined := startJoins(4)
	waitPending(4)
	sessions8 := grow(sessions, joined, 4, 8)
	if anchor.Epoch() != 1 {
		t.Fatalf("epoch after grow = %d, want 1", anchor.Epoch())
	}
	forEachSession(t, sessions8, "p=8 collectives", verifyCollectives)

	// Kill rank 6 without ceremony, then shrink the survivors to p=7.
	victim := gca.ElasticCommOf(sessions8[6])
	victim.Close()
	live[victim] = false
	time.Sleep(500 * time.Millisecond) // let heartbeats notice the death

	sessions7 := make([]*gca.Session, 7)
	{
		var mu sync.Mutex
		var wg sync.WaitGroup
		errs := make([]error, 8)
		for r, s := range sessions8 {
			if r == 6 {
				continue
			}
			wg.Add(1)
			go func(r int, s *gca.Session) {
				defer wg.Done()
				ns, err := s.Shrink()
				if err != nil {
					errs[r] = err
					return
				}
				mu.Lock()
				sessions7[ns.Rank()] = ns
				mu.Unlock()
			}(r, s)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("shrink: rank %d: %v", r, err)
			}
		}
	}
	for r, s := range sessions7 {
		if s == nil || s.Size() != 7 {
			t.Fatalf("shrunken session %d missing or wrong size", r)
		}
	}
	forEachSession(t, sessions7, "p=7 collectives", verifyCollectives)

	// Rejoin: a fresh incarnation comes back through the same door and the
	// world grows to 8 again — this Grow crosses the SubComm left by
	// Shrink, exercising the rank translation down to the member.
	rejoined := startJoins(1)
	waitPending(1)
	sessionsFinal := grow(sessions7, rejoined, 1, 8)
	if anchor.Epoch() != 2 {
		t.Fatalf("epoch after rejoin = %d, want 2", anchor.Epoch())
	}
	forEachSession(t, sessionsFinal, "p=8 rejoin collectives", verifyCollectives)
}

// TestGrowValidation covers the guard rails: Grow without fault tolerance
// and Grow on a non-elastic transport.
func TestGrowValidation(t *testing.T) {
	w := gca.NewLocalWorld(2)
	defer w.Close()
	errs := w.RunAll(func(c gca.Comm) error {
		if _, err := gca.NewSession(c).Grow(); err == nil {
			return fmt.Errorf("Grow without WithFaultTolerance must fail")
		}
		s := gca.NewSession(c, gca.WithFaultTolerance(), gca.WithTimeout(time.Second))
		if _, err := s.Grow(); err == nil {
			return fmt.Errorf("Grow on a non-elastic transport must fail")
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}
