// Package exacoll's root benchmark suite: one testing.B benchmark per
// table/figure of the paper's evaluation. Two kinds of measurement:
//
//   - Benchmark* running collectives on the in-memory transport measure
//     real wall-clock per operation on this host (useful for relative
//     comparisons and regression tracking);
//   - Benchmark*Sim running the deterministic machine simulator report
//     the simulated collective latency in the custom metric
//     "sim-us/op" (the numbers EXPERIMENTS.md records), while ns/op
//     measures the simulator's own speed.
//
// The full paper-scale figure data is produced by cmd/gcabench; these
// benches exercise the same code paths at a size that completes in
// seconds.
package exacoll

import (
	"fmt"
	"testing"

	"exacoll/internal/bench"
	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/machine"
	"exacoll/internal/transport/mem"
)

// runWall runs one collective repeatedly across a mem world and reports
// wall time per operation.
func runWall(b *testing.B, p int, op core.CollOp, algName string, n, k int) {
	b.Helper()
	alg, err := core.Lookup(algName)
	if err != nil {
		b.Fatal(err)
	}
	w := mem.NewWorld(p)
	defer w.Close()
	b.SetBytes(int64(n))
	b.ResetTimer()
	err = w.Run(func(c comm.Comm) error {
		for i := 0; i < b.N; i++ {
			a := bench.MakeArgs(op, c.Rank(), p, n, 0, k)
			if err := alg.Run(c, a); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// runSim times one simulated collective per iteration and reports the
// virtual latency as sim-us/op.
func runSim(b *testing.B, spec machine.Spec, p int, algName string, n, k int) {
	b.Helper()
	fn, op, err := bench.AlgFn(algName)
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		t, err := bench.SimLatency(spec, p, op, fn, n, 0, k)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(last*1e6, "sim-us/op")
}

// BenchmarkTable1 exercises each of Table I's 10 generalized algorithms on
// the in-memory transport (p=8, 4 KiB, k=4).
func BenchmarkTable1(b *testing.B) {
	for _, alg := range core.TableIAlgorithms() {
		switch alg.Op {
		case core.OpBcast, core.OpReduce, core.OpAllgather, core.OpAllreduce:
			alg := alg
			b.Run(alg.Name, func(b *testing.B) {
				runWall(b, 8, alg.Op, alg.Name, 4096, 4)
			})
		}
	}
}

// BenchmarkFig7DefaultRadix compares each generalized algorithm at its
// default radix with its fixed-radix baseline (wall clock; the slowdown
// claim of Fig. 7).
func BenchmarkFig7DefaultRadix(b *testing.B) {
	pairs := []struct {
		gen, base string
		op        core.CollOp
		k         int
	}{
		{"bcast_knomial", "bcast_binomial", core.OpBcast, 2},
		{"reduce_knomial", "reduce_binomial", core.OpReduce, 2},
		{"allreduce_recmul", "allreduce_recdbl", core.OpAllreduce, 2},
		{"allgather_recmul", "allgather_recdbl", core.OpAllgather, 2},
		{"bcast_kring", "bcast_ring", core.OpBcast, 1},
		{"allreduce_kring", "allreduce_ring", core.OpAllreduce, 1},
	}
	for _, pr := range pairs {
		pr := pr
		b.Run(pr.gen, func(b *testing.B) { runWall(b, 8, pr.op, pr.gen, 16<<10, pr.k) })
		b.Run(pr.base, func(b *testing.B) { runWall(b, 8, pr.op, pr.base, 16<<10, 0) })
	}
}

// BenchmarkFig8aKnomialReduceSim sweeps the k-nomial reduce radix on
// simulated Frontier (the Fig. 8a k-sweep).
func BenchmarkFig8aKnomialReduceSim(b *testing.B) {
	for _, k := range []int{2, 4, 8, 16, 32} {
		for _, n := range []int{8, 64 << 10} {
			b.Run(fmt.Sprintf("k=%d/n=%d", k, n), func(b *testing.B) {
				runSim(b, machine.Frontier(), 32, "reduce_knomial", n, k)
			})
		}
	}
}

// BenchmarkFig8bRecMulAllreduceSim sweeps the recursive-multiplying
// allreduce radix on simulated Frontier (Fig. 8b; optimal near the port
// count, 4).
func BenchmarkFig8bRecMulAllreduceSim(b *testing.B) {
	for _, k := range []int{2, 3, 4, 5, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			runSim(b, machine.Frontier(), 32, "allreduce_recmul", 64<<10, k)
		})
	}
}

// BenchmarkFig8cKRingBcastSim sweeps the k-ring bcast group size on
// simulated Frontier with 8 PPN (Fig. 8c; optimal at k = PPN = 8).
func BenchmarkFig8cKRingBcastSim(b *testing.B) {
	spec := machine.Frontier().WithPPN(8)
	for _, k := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			runSim(b, spec, 64, "bcast_kring", 1<<20, k)
		})
	}
}

// BenchmarkFig9Collectives runs the best-vs-baseline matchups of Fig. 9 on
// the in-memory transport.
func BenchmarkFig9Collectives(b *testing.B) {
	cases := []struct {
		name string
		op   core.CollOp
		alg  string
		n, k int
	}{
		{"reduce/best", core.OpReduce, "reduce_knomial", 1 << 10, 8},
		{"reduce/baseline", core.OpReduce, "reduce_binomial", 1 << 10, 0},
		{"bcast/best", core.OpBcast, "bcast_recmul", 1 << 20, 4},
		{"bcast/baseline", core.OpBcast, "bcast_ring", 1 << 20, 0},
		{"allgather/best", core.OpAllgather, "allgather_recmul", 4 << 10, 4},
		{"allgather/baseline", core.OpAllgather, "allgather_ring", 4 << 10, 0},
		{"allreduce/best", core.OpAllreduce, "allreduce_recmul", 64 << 10, 4},
		{"allreduce/baseline", core.OpAllreduce, "allreduce_recdbl", 64 << 10, 0},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) { runWall(b, 8, tc.op, tc.alg, tc.n, tc.k) })
	}
}

// BenchmarkFig10ScaleSim measures the large-scale trends of Fig. 10 at a
// bench-tractable size (p=256 on simulated Frontier).
func BenchmarkFig10ScaleSim(b *testing.B) {
	for _, tc := range []struct {
		name, alg string
		n, k      int
	}{
		{"reduce/k=2", "reduce_knomial", 1 << 10, 2},
		{"reduce/k=32", "reduce_knomial", 1 << 10, 32},
		{"reduce/k=256", "reduce_knomial", 1 << 10, 256},
		{"allreduce/k=2", "allreduce_recmul", 64 << 10, 2},
		{"allreduce/k=4", "allreduce_recmul", 64 << 10, 4},
		{"allreduce/k=8", "allreduce_recmul", 64 << 10, 8},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			runSim(b, machine.Frontier(), 256, tc.alg, tc.n, tc.k)
		})
	}
}

// BenchmarkFig11PolarisSim mirrors Fig. 11 on simulated Polaris (2 NIC
// ports: recursive multiplying favors k=4/8, multiples of 2).
func BenchmarkFig11PolarisSim(b *testing.B) {
	for _, k := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("allreduce/k=%d", k), func(b *testing.B) {
			runSim(b, machine.Polaris(), 32, "allreduce_recmul", 64<<10, k)
		})
	}
}

// BenchmarkExtensions exercises the beyond-Table-I algorithms: prefix
// scans and the pipelined chain bcast.
func BenchmarkExtensions(b *testing.B) {
	b.Run("scan_linear", func(b *testing.B) { runWall(b, 8, core.OpScan, "scan_linear", 16<<10, 0) })
	b.Run("scan_hillissteele", func(b *testing.B) { runWall(b, 8, core.OpScan, "scan_hillissteele", 16<<10, 0) })
	b.Run("bcast_chain", func(b *testing.B) { runWall(b, 8, core.OpBcast, "bcast_chain", 1<<20, 0) })
	b.Run("bcast_knomial_pipelined", func(b *testing.B) {
		runWall(b, 8, core.OpBcast, "bcast_knomial_pipelined", 1<<20, 4)
	})
	b.Run("allreduce_hier", func(b *testing.B) { runWall(b, 8, core.OpAllreduce, "allreduce_hier", 64<<10, 4) })
}

// BenchmarkTransportPingPong compares the raw substrates.
func BenchmarkTransportPingPong(b *testing.B) {
	w := mem.NewWorld(2)
	defer w.Close()
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	err := w.Run(func(c comm.Comm) error {
		in := make([]byte, 4096)
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				if err := c.Send(1, 1, buf); err != nil {
					return err
				}
				if _, err := c.Recv(1, 2, in); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(0, 1, in); err != nil {
					return err
				}
				if err := c.Send(0, 2, buf); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScheduleConstruction measures k-ring schedule building (it runs
// per collective invocation).
func BenchmarkScheduleConstruction(b *testing.B) {
	for _, tc := range []struct{ p, k int }{{64, 8}, {256, 8}, {1024, 8}} {
		tc := tc
		b.Run(fmt.Sprintf("p=%d", tc.p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := core.KRingSchedule(tc.p, tc.k)
				if err != nil {
					b.Fatal(err)
				}
				_ = s
			}
		})
	}
}
