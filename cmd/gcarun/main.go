// Command gcarun runs one collective across real OS processes over TCP —
// the mpirun-style launcher for the library. Start one process per rank
// with the same -size and -addr; rank 0 listens, the rest dial in.
//
// Example (3 ranks of an allreduce on one host):
//
//	gcarun -rank 0 -size 3 -addr 127.0.0.1:7777 -coll allreduce -alg allreduce_recmul -k 3 -bytes 1024 &
//	gcarun -rank 1 -size 3 -addr 127.0.0.1:7777 -coll allreduce -alg allreduce_recmul -k 3 -bytes 1024 &
//	gcarun -rank 2 -size 3 -addr 127.0.0.1:7777 -coll allreduce -alg allreduce_recmul -k 3 -bytes 1024
//
// With -spawn N (rank -1), gcarun forks N copies of itself and acts as
// the launcher, so a full run is one command:
//
//	gcarun -spawn 3 -coll allreduce -alg allreduce_recmul -k 3 -bytes 1024
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"time"

	"exacoll/internal/bench"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/osu"
	"exacoll/internal/transport/tcp"
)

func main() {
	rank := flag.Int("rank", -1, "this process's rank (set by -spawn)")
	size := flag.Int("size", 0, "total ranks")
	addr := flag.String("addr", "127.0.0.1:7777", "rank 0 rendezvous address")
	coll := flag.String("coll", "allreduce", "collective: bcast|reduce|gather|scatter|allgather|allreduce|reducescatter|alltoall")
	algName := flag.String("alg", "", "algorithm registry name (default: a sensible generalized choice)")
	k := flag.Int("k", 4, "radix for generalized algorithms")
	nbytes := flag.Int("bytes", 1024, "message size in bytes")
	root := flag.Int("root", 0, "root rank for rooted collectives")
	iters := flag.Int("iters", 10, "timed iterations")
	spawn := flag.Int("spawn", 0, "spawn N local ranks and act as launcher")
	flag.Parse()

	if *spawn > 0 {
		launch(*spawn)
		return
	}
	if *rank < 0 || *size < 1 {
		fatal(fmt.Errorf("need -rank and -size (or -spawn N)"))
	}

	op, err := parseOp(*coll)
	if err != nil {
		fatal(err)
	}
	name := *algName
	if name == "" {
		name = defaultAlg(op)
	}
	alg, err := core.Lookup(name)
	if err != nil {
		fatal(err)
	}
	if alg.Op != op {
		fatal(fmt.Errorf("%s implements %v, not %v", name, alg.Op, op))
	}

	c, err := tcp.Rendezvous(*rank, *size, *addr, tcp.Options{Timeout: 30 * time.Second})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	n := bench.RoundSize(*nbytes)
	// OSU protocol: warmup, barrier, timed loop, cross-rank statistics.
	stats, err := osu.Algorithm(c, name, n, *root, *k, osu.Options{Warmup: 3, Iters: *iters})
	if err != nil {
		fatal(err)
	}
	if *rank == 0 {
		fmt.Printf("%s %s n=%dB k=%d p=%d: %s\n", op, name, n, *k, *size, stats)
	}

	// Correctness spot check for reductions: sum of MakeArgs float64
	// patterns is deterministic, so verify one element on every rank.
	if op == core.OpAllreduce {
		a := bench.MakeArgs(op, *rank, *size, n, *root, *k)
		if err := alg.Run(c, a); err != nil {
			fatal(err)
		}
		var want float64
		for r := 0; r < *size; r++ {
			b := bench.MakeArgs(op, r, *size, n, *root, *k)
			want += datatype.DecodeFloat64(b.SendBuf[:8])[0]
		}
		got := datatype.DecodeFloat64(a.RecvBuf[:8])[0]
		if got != want {
			fatal(fmt.Errorf("verification failed: element 0 = %g, want %g", got, want))
		}
		fmt.Printf("rank %d: verified\n", *rank)
	}
	// Final barrier so no rank tears its connections down while a peer is
	// still inside the last collective.
	if err := core.BarrierDissemination(c); err != nil {
		fatal(err)
	}
}

// launch re-executes this binary once per rank with the original flags.
func launch(n int) {
	self, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	args := []string{}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "spawn" {
			return
		}
		args = append(args, "-"+f.Name, f.Value.String())
	})
	if !flagSet("size") {
		args = append(args, "-size", strconv.Itoa(n))
	}
	procs := make([]*exec.Cmd, n)
	for r := 0; r < n; r++ {
		cmd := exec.Command(self, append(append([]string{}, args...), "-rank", strconv.Itoa(r))...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fatal(err)
		}
		procs[r] = cmd
	}
	code := 0
	for r, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "gcarun: rank %d: %v\n", r, err)
			code = 1
		}
	}
	os.Exit(code)
}

func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func parseOp(s string) (core.CollOp, error) {
	switch s {
	case "bcast":
		return core.OpBcast, nil
	case "reduce":
		return core.OpReduce, nil
	case "gather":
		return core.OpGather, nil
	case "scatter":
		return core.OpScatter, nil
	case "allgather":
		return core.OpAllgather, nil
	case "allreduce":
		return core.OpAllreduce, nil
	case "reducescatter":
		return core.OpReduceScatter, nil
	case "alltoall":
		return core.OpAlltoall, nil
	}
	return 0, fmt.Errorf("unknown collective %q", s)
}

func defaultAlg(op core.CollOp) string {
	switch op {
	case core.OpBcast:
		return "bcast_knomial"
	case core.OpReduce:
		return "reduce_knomial"
	case core.OpGather:
		return "gather_knomial"
	case core.OpScatter:
		return "scatter_knomial"
	case core.OpAllgather:
		return "allgather_recmul"
	case core.OpReduceScatter:
		return "reducescatter_kring"
	case core.OpAlltoall:
		return "alltoall_bruck"
	default:
		return "allreduce_recmul"
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcarun:", err)
	os.Exit(1)
}
