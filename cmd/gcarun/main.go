// Command gcarun runs one collective across real OS processes — the
// mpirun-style launcher for the library. The wire is TCP by default
// (start one process per rank with the same -size and -addr; rank 0
// listens, the rest dial in) or intranode shared memory with
// -transport shm.
//
// Example (3 ranks of an allreduce on one host):
//
//	gcarun -rank 0 -size 3 -addr 127.0.0.1:7777 -coll allreduce -alg allreduce_recmul -k 3 -bytes 1024 &
//	gcarun -rank 1 -size 3 -addr 127.0.0.1:7777 -coll allreduce -alg allreduce_recmul -k 3 -bytes 1024 &
//	gcarun -rank 2 -size 3 -addr 127.0.0.1:7777 -coll allreduce -alg allreduce_recmul -k 3 -bytes 1024
//
// With -spawn N (rank -1), gcarun forks N copies of itself and acts as
// the launcher, so a full run is one command:
//
//	gcarun -spawn 3 -coll allreduce -alg allreduce_recmul -k 3 -bytes 1024
//
// Over shared memory the launcher creates the region file, the ranks
// attach, and the launcher removes it when the run ends:
//
//	gcarun -spawn 8 -transport shm -coll allreduce -alg allreduce_recmul -k 4 -bytes 4096
//
// -stripes S opens S parallel TCP connections per peer pair and stripes
// large messages across them (the multi-port NIC model, §II-B2).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"exacoll/internal/bench"
	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/flight"
	"exacoll/internal/metrics"
	"exacoll/internal/osu"
	"exacoll/internal/topo"
	"exacoll/internal/transport/shm"
	"exacoll/internal/transport/tcp"
	"exacoll/internal/tuning"
)

// transportComm is the launcher-facing surface of a wire transport: the
// collective interface plus the lifecycle and locality knobs gcarun sets.
type transportComm interface {
	comm.Comm
	SetLocality(ppn, ports int)
	Close() error
}

func main() {
	rank := flag.Int("rank", -1, "this process's rank (set by -spawn)")
	size := flag.Int("size", 0, "total ranks")
	addr := flag.String("addr", "127.0.0.1:7777", "rank 0 rendezvous address")
	coll := flag.String("coll", "allreduce", "collective: bcast|reduce|gather|scatter|allgather|allreduce|reducescatter|alltoall")
	algName := flag.String("alg", "", "algorithm registry name (default: a sensible generalized choice)")
	k := flag.Int("k", 4, "radix for generalized algorithms")
	nbytes := flag.Int("bytes", 1024, "message size in bytes")
	root := flag.Int("root", 0, "root rank for rooted collectives")
	iters := flag.Int("iters", 10, "timed iterations")
	ppn := flag.Int("ppn", 0,
		"ranks per node (synthetic locality): discover a topology map and route bcast/reduce/allgather/allreduce through the hierarchical engine")
	spawn := flag.Int("spawn", 0, "spawn N local ranks and act as launcher")
	transport := flag.String("transport", "tcp", "wire transport: tcp (sockets, optional striping) | shm (intranode shared memory)")
	shmPath := flag.String("shm-path", "", "shm region file (created by -spawn; required when launching shm ranks by hand)")
	stripes := flag.Int("stripes", 0, "tcp: parallel connections per peer pair; large sends stripe across them")
	metricsAddr := flag.String("metrics-addr", "",
		"serve HTTP observability endpoints (/metrics Prometheus, /debug/collectives JSON) on this address while running; with -spawn, rank r gets port+r")
	flightPath := flag.String("flight", "",
		"record a flight trace of the run and write the merged cross-rank dump (JSON, for `gcaviz flight`) to this file from rank 0")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (with -spawn, rank r gets a .rank<r> suffix); pprof labels segment samples by (collective, alg, k)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit (with -spawn, rank r gets a .rank<r> suffix)")
	flag.Parse()

	if *spawn > 0 {
		launch(*spawn, *transport, *shmPath, *metricsAddr, *cpuprofile, *memprofile)
		return
	}
	if *rank < 0 || *size < 1 {
		fatal(fmt.Errorf("need -rank and -size (or -spawn N)"))
	}

	if *cpuprofile != "" {
		// Label collective execution so `go tool pprof -tagfocus` can slice
		// samples by (collective, alg, k). Labels are off by default because
		// pprof.Do allocates per wrapped call.
		tuning.EnableProfLabels(true)
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		tuning.EnableProfLabels(true)
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gcarun: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gcarun: memprofile:", err)
			}
		}()
	}

	op, err := parseOp(*coll)
	if err != nil {
		fatal(err)
	}
	name := *algName
	if name == "" {
		name = defaultAlg(op)
	}
	alg, err := core.Lookup(name)
	if err != nil {
		fatal(err)
	}
	if alg.Op != op {
		fatal(fmt.Errorf("%s implements %v, not %v", name, alg.Op, op))
	}

	var tc transportComm
	switch *transport {
	case "tcp":
		tc, err = tcp.Rendezvous(*rank, *size, *addr,
			tcp.Options{Timeout: 30 * time.Second, Stripes: *stripes})
	case "shm":
		if *shmPath == "" {
			fatal(fmt.Errorf("-transport shm needs -shm-path (or use -spawn, which creates one)"))
		}
		tc, err = shm.Attach(*shmPath, *rank, *size, shm.Options{})
	default:
		fatal(fmt.Errorf("unknown transport %q (want tcp or shm)", *transport))
	}
	if err != nil {
		fatal(err)
	}
	defer tc.Close()
	if *ppn > 0 {
		tc.SetLocality(*ppn, 0)
	}

	var c comm.Comm = tc
	var reg *metrics.Registry
	if *metricsAddr != "" {
		reg = metrics.NewRegistry()
		c = reg.Instrument(c)
		go serveMetrics(*metricsAddr, reg)
	}
	var frec *flight.RankRecorder
	if *flightPath != "" {
		// Outermost wrapper so the ring sees everything, including the
		// metrics-counted traffic and per-level hierarchical phases.
		c = flight.NewRecorder(flight.Options{}).Wrap(c)
		frec = flight.RecorderOf(c)
	}

	// -ppn routes the supported collectives through the multi-level
	// composition engine; discovery goes through the instrumented wrapper so
	// the engine also picks up the registry for per-level accounting.
	var eng *topo.Engine
	var tmap *topo.Map
	if *ppn > 0 && hierSupported(op) {
		m, ok := topo.Discover(c)
		if !ok {
			fatal(fmt.Errorf("topology discovery failed at ppn=%d", *ppn))
		}
		e, err := topo.NewEngine(c, m, topo.Config{})
		if err != nil {
			fatal(err)
		}
		eng, tmap = e, m
	} else if *ppn > 0 {
		fmt.Fprintf(os.Stderr, "gcarun: -ppn ignored: no hierarchical lowering for %v\n", op)
	}
	// A one-rung table routes runs through tuning.Table.Run, so the
	// explicit algorithm choice still produces selection-decision records
	// when metrics are on.
	tab := &tuning.Table{Machine: "gcarun", P: *size, Ops: map[string][]tuning.Entry{
		op.String(): {{Alg: name, K: *k}},
	}}

	n := bench.RoundSize(*nbytes)
	// OSU protocol: warmup, barrier, timed loop, cross-rank statistics.
	if eng != nil {
		a := bench.MakeArgs(op, *rank, *size, n, *root, *k)
		stats, err := osu.Collective(c, func() error { return runHier(eng, op, a) },
			osu.Options{Warmup: 3, Iters: *iters})
		if err != nil {
			fatal(err)
		}
		if *rank == 0 {
			fmt.Printf("%s hierarchical n=%dB p=%d (%d nodes x %d ppn): %s\n",
				op, n, *size, tmap.NumNodes(), tmap.PPN, stats)
		}
	} else {
		stats, err := osu.Algorithm(c, name, n, *root, *k, osu.Options{Warmup: 3, Iters: *iters})
		if err != nil {
			fatal(err)
		}
		if *rank == 0 {
			fmt.Printf("%s %s n=%dB k=%d p=%d: %s\n", op, name, n, *k, *size, stats)
		}
	}

	// Correctness spot check for reductions: sum of MakeArgs float64
	// patterns is deterministic, so verify one element on every rank.
	if op == core.OpAllreduce {
		a := bench.MakeArgs(op, *rank, *size, n, *root, *k)
		if eng != nil {
			err = eng.Allreduce(a.SendBuf, a.RecvBuf, a.Op, a.Type)
		} else {
			err = tab.Run(c, op, a)
		}
		if err != nil {
			fatal(err)
		}
		var want float64
		for r := 0; r < *size; r++ {
			b := bench.MakeArgs(op, r, *size, n, *root, *k)
			want += datatype.DecodeFloat64(b.SendBuf[:8])[0]
		}
		got := datatype.DecodeFloat64(a.RecvBuf[:8])[0]
		if got != want {
			fatal(fmt.Errorf("verification failed: element 0 = %g, want %g", got, want))
		}
		fmt.Printf("rank %d: verified\n", *rank)
	} else if reg != nil && eng == nil {
		// Other collectives: one tuned run so the decision telemetry has a
		// record to show for this invocation (the hierarchical path already
		// records per-level decisions during the timed loop).
		a := bench.MakeArgs(op, *rank, *size, n, *root, *k)
		if err := tab.Run(c, op, a); err != nil {
			fatal(err)
		}
	}
	if reg != nil {
		t := reg.Snapshot().Totals()
		fmt.Printf("rank %d metrics: sends=%d recvs=%d send_bytes=%d recv_bytes=%d decisions=%d\n",
			*rank, t.Sends, t.Recvs, t.SendBytes, t.RecvBytes, reg.Snapshot().DecisionsTotal)
		if t.HierIntraSends+t.HierInterSends > 0 {
			fmt.Printf("rank %d topology: intra sends=%d bytes=%d, inter sends=%d bytes=%d\n",
				*rank, t.HierIntraSends, t.HierIntraBytes, t.HierInterSends, t.HierInterBytes)
		}
	}
	// Flight collection is itself collective (clock probes + ring gather),
	// so it doubles as a sync point before the final barrier.
	if frec != nil {
		d, err := flight.Collect(c, frec, flight.CollectOptions{})
		if err != nil {
			fatal(err)
		}
		if *rank == 0 {
			f, err := os.Create(*flightPath)
			if err != nil {
				fatal(err)
			}
			if err := d.WriteJSON(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("rank 0: wrote flight dump %s (analyze with `gcaviz flight %s`)\n",
				*flightPath, *flightPath)
		}
	}
	// Final barrier so no rank tears its connections down while a peer is
	// still inside the last collective.
	if err := core.BarrierDissemination(c); err != nil {
		fatal(err)
	}
}

// serveMetrics exposes the registry over HTTP for the lifetime of the
// run: /metrics in Prometheus text format, /debug/collectives as JSON
// (counters, histograms, and recent selection decisions).
func serveMetrics(addr string, reg *metrics.Registry) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := metrics.WritePrometheus(w, reg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/collectives", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := metrics.WriteJSON(w, reg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintf(os.Stderr, "gcarun: metrics server: %v\n", err)
	}
}

// metricsAddrForRank offsets the port by rank so every spawned process
// gets its own endpoint (each OS process has its own registry).
func metricsAddrForRank(addr string, rank int) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return addr
	}
	return net.JoinHostPort(host, strconv.Itoa(p+rank))
}

// launch re-executes this binary once per rank with the original flags.
// Per-rank outputs (metrics endpoint, profiles) get a rank-distinct
// variant so spawned processes do not clobber each other; the flight dump
// path is forwarded as-is (only rank 0 writes it). Over shared memory the
// launcher owns the region file: create before the first rank starts,
// remove after the last exits, so crashed runs leave nothing behind in
// /dev/shm.
func launch(n int, transport, shmPath, metricsAddr, cpuprofile, memprofile string) {
	self, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	args := []string{}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "spawn", "metrics-addr", "cpuprofile", "memprofile":
			return
		}
		args = append(args, "-"+f.Name, f.Value.String())
	})
	if !flagSet("size") {
		args = append(args, "-size", strconv.Itoa(n))
	}
	ownShm := ""
	if transport == "shm" && shmPath == "" {
		ownShm = shm.DefaultPath(fmt.Sprintf("gcarun-%d", os.Getpid()))
		if err := shm.Create(ownShm, n, shm.Options{}); err != nil {
			fatal(err)
		}
		args = append(args, "-shm-path", ownShm)
	}
	procs := make([]*exec.Cmd, n)
	for r := 0; r < n; r++ {
		rargs := append(append([]string{}, args...), "-rank", strconv.Itoa(r))
		if metricsAddr != "" {
			rargs = append(rargs, "-metrics-addr", metricsAddrForRank(metricsAddr, r))
		}
		if cpuprofile != "" {
			rargs = append(rargs, "-cpuprofile", cpuprofile+".rank"+strconv.Itoa(r))
		}
		if memprofile != "" {
			rargs = append(rargs, "-memprofile", memprofile+".rank"+strconv.Itoa(r))
		}
		cmd := exec.Command(self, rargs...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fatal(err)
		}
		procs[r] = cmd
	}
	code := 0
	for r, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "gcarun: rank %d: %v\n", r, err)
			code = 1
		}
	}
	if ownShm != "" {
		os.Remove(ownShm)
	}
	os.Exit(code)
}

func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func parseOp(s string) (core.CollOp, error) {
	switch s {
	case "bcast":
		return core.OpBcast, nil
	case "reduce":
		return core.OpReduce, nil
	case "gather":
		return core.OpGather, nil
	case "scatter":
		return core.OpScatter, nil
	case "allgather":
		return core.OpAllgather, nil
	case "allreduce":
		return core.OpAllreduce, nil
	case "reducescatter":
		return core.OpReduceScatter, nil
	case "alltoall":
		return core.OpAlltoall, nil
	}
	return 0, fmt.Errorf("unknown collective %q", s)
}

// hierSupported reports whether the topology engine lowers this operation.
func hierSupported(op core.CollOp) bool {
	switch op {
	case core.OpBcast, core.OpReduce, core.OpAllgather, core.OpAllreduce:
		return true
	}
	return false
}

// runHier dispatches one collective through the composition engine.
func runHier(e *topo.Engine, op core.CollOp, a core.Args) error {
	switch op {
	case core.OpBcast:
		return e.Bcast(a.SendBuf, a.Root)
	case core.OpReduce:
		return e.Reduce(a.SendBuf, a.RecvBuf, a.Op, a.Type, a.Root)
	case core.OpAllgather:
		return e.Allgather(a.SendBuf, a.RecvBuf)
	case core.OpAllreduce:
		return e.Allreduce(a.SendBuf, a.RecvBuf, a.Op, a.Type)
	}
	return fmt.Errorf("no hierarchical lowering for %v", op)
}

func defaultAlg(op core.CollOp) string {
	switch op {
	case core.OpBcast:
		return "bcast_knomial"
	case core.OpReduce:
		return "reduce_knomial"
	case core.OpGather:
		return "gather_knomial"
	case core.OpScatter:
		return "scatter_knomial"
	case core.OpAllgather:
		return "allgather_recmul"
	case core.OpReduceScatter:
		return "reducescatter_kring"
	case core.OpAlltoall:
		return "alltoall_bruck"
	default:
		return "allreduce_recmul"
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcarun:", err)
	os.Exit(1)
}
