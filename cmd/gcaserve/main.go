// Command gcaserve is the long-lived collective service: one process
// hosting many concurrent tenants, each a world of collective sessions
// isolated from its cotenants by tag namespaces, admission control, and
// per-tenant QoS tuning (see internal/svc).
//
// Usage:
//
//	gcaserve -addr :8080 -max-sessions 256 -queue 64
//
// HTTP API (JSON):
//
//	POST /v1/open?id=T&qos=latency|throughput&ranks=N   admit a tenant
//	POST /v1/run?id=T&op=allreduce&bytes=4096           run one collective
//	POST /v1/close?id=T                                 retire a tenant
//	GET  /v1/stats                                      server totals
//	GET  /metrics                                       Prometheus exposition,
//	                                                    {tenant, qos} labels
//	GET  /healthz                                       health JSON
//	                                                    {status, pools,
//	                                                    evicted, breaker_open};
//	                                                    503 when degraded
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"time"

	"exacoll/gca"
	"exacoll/internal/metrics"
	"exacoll/internal/svc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process boundary: it parses flags, binds the
// listener, prints the bound address, and serves until the process dies.
// Exit codes: 1 runtime error, 2 usage.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcaserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	maxSessions := fs.Int("max-sessions", 256, "max concurrently live tenants")
	queue := fs.Int("queue", 64, "admission queue length (0: fail fast when full)")
	admitTimeout := fs.Duration("admit-timeout", 5*time.Second, "max time an open waits in the admission queue")
	opTimeout := fs.Duration("op-timeout", 30*time.Second, "per-operation timeout inside tenant sessions (0: none)")
	maxRanks := fs.Int("max-ranks", 512, "max ranks per tenant")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	srv := svc.NewServer(svc.Config{
		MaxSessions:  *maxSessions,
		QueueLen:     *queue,
		AdmitTimeout: *admitTimeout,
		OpTimeout:    *opTimeout,
		MaxRanks:     *maxRanks,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "gcaserve: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "gcaserve listening on %s\n", ln.Addr())
	if err := http.Serve(ln, newMux(srv)); err != nil {
		fmt.Fprintf(stderr, "gcaserve: %v\n", err)
		return 1
	}
	return 0
}

// newMux builds the HTTP API over a service server (separated from run so
// tests drive it through httptest).
func newMux(srv *svc.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/open", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		id := r.FormValue("id")
		qos := svc.QoS(r.FormValue("qos"))
		if qos == "" {
			qos = svc.QoSLatency
		}
		ranks, err := strconv.Atoi(r.FormValue("ranks"))
		if err != nil {
			http.Error(w, "ranks must be an integer", http.StatusBadRequest)
			return
		}
		tn, err := srv.Open(id, qos, ranks)
		if err != nil {
			http.Error(w, err.Error(), openStatus(err))
			return
		}
		writeJSON(w, map[string]any{"id": tn.ID(), "qos": tn.QoS(), "ranks": tn.Size()})
	})
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		tn, ok := srv.Tenant(r.FormValue("id"))
		if !ok {
			http.Error(w, "no such tenant", http.StatusNotFound)
			return
		}
		op := r.FormValue("op")
		nbytes := 1024
		if v := r.FormValue("bytes"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 8 {
				http.Error(w, "bytes must be an integer >= 8", http.StatusBadRequest)
				return
			}
			nbytes = n
		}
		start := time.Now()
		if err := runCollective(tn, op, nbytes); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{
			"id": tn.ID(), "op": op, "bytes": nbytes,
			"seconds": time.Since(start).Seconds(),
		})
	})
	mux.HandleFunc("/v1/close", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		tn, ok := srv.Tenant(r.FormValue("id"))
		if !ok {
			http.Error(w, "no such tenant", http.StatusNotFound)
			return
		}
		tn.Close()
		writeJSON(w, map[string]any{"id": tn.ID(), "closed": true})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, srv.Stats())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		metrics.WritePrometheusTenants(w, srv.Tenants())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := srv.Health()
		if h.Status != "ok" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(h)
			return
		}
		writeJSON(w, h)
	})
	return mux
}

// openStatus maps admission failures to HTTP status codes.
func openStatus(err error) int {
	switch {
	case err == svc.ErrBusy:
		return http.StatusTooManyRequests
	case err == svc.ErrAdmissionTimeout:
		return http.StatusServiceUnavailable
	case err == svc.ErrClosed:
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// runCollective drives one named collective across every rank of the
// tenant with deterministic data and verifies the result — the service's
// demo/benchmark entry point, not a data plane (tenant payloads live in
// the tenant process; the service hosts the communicators).
func runCollective(tn *svc.Tenant, op string, nbytes int) error {
	p := tn.Size()
	want := float64(p*(p+1)) / 2
	return tn.Run(func(rank int, s *gca.Session) error {
		switch op {
		case "barrier":
			return s.Barrier()
		case "bcast":
			buf := make([]byte, nbytes)
			if rank == 0 {
				for i := range buf {
					buf[i] = byte(i)
				}
			}
			if err := s.Bcast(buf, 0); err != nil {
				return err
			}
			for i := range buf {
				if buf[i] != byte(i) {
					return fmt.Errorf("bcast[%d] corrupt", i)
				}
			}
			return nil
		case "allreduce":
			n := nbytes / 8
			send := make([]byte, 8*n)
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(send[8*i:], math.Float64bits(float64(rank+1)))
			}
			recv := make([]byte, 8*n)
			if err := s.Allreduce(send, recv, gca.Sum, gca.Float64); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				if got := math.Float64frombits(binary.LittleEndian.Uint64(recv[8*i:])); got != want {
					return fmt.Errorf("allreduce[%d] = %v, want %v", i, got, want)
				}
			}
			return nil
		case "allgather":
			blk := nbytes / p
			if blk < 1 {
				blk = 1
			}
			send := make([]byte, blk)
			for i := range send {
				send[i] = byte(rank)
			}
			recv := make([]byte, blk*p)
			if err := s.Allgather(send, recv); err != nil {
				return err
			}
			for j := 0; j < p; j++ {
				if recv[j*blk] != byte(j) {
					return fmt.Errorf("allgather block %d corrupt", j)
				}
			}
			return nil
		case "alltoall":
			blk := nbytes / p
			if blk < 1 {
				blk = 1
			}
			send := make([]byte, blk*p)
			for j := 0; j < p; j++ {
				for k := 0; k < blk; k++ {
					send[j*blk+k] = byte(rank*p + j)
				}
			}
			recv := make([]byte, blk*p)
			if err := s.Alltoall(send, recv); err != nil {
				return err
			}
			for j := 0; j < p; j++ {
				if recv[j*blk] != byte(j*p+rank) {
					return fmt.Errorf("alltoall block %d corrupt", j)
				}
			}
			return nil
		}
		return fmt.Errorf("unknown op %q (barrier, bcast, allreduce, allgather, alltoall)", op)
	})
}
