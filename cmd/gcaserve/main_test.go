package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"exacoll/internal/svc"
)

func testServer(t *testing.T, cfg svc.Config) (*httptest.Server, *svc.Server) {
	t.Helper()
	srv := svc.NewServer(cfg)
	ts := httptest.NewServer(newMux(srv))
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, srv
}

func post(t *testing.T, ts *httptest.Server, path string, q url.Values) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path+"?"+q.Encode(), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

// TestAPILifecycle drives the two-tenant quick-start from the README
// through the HTTP API: open two tenants under different QoS classes, run
// collectives in each, scrape labeled metrics, close.
func TestAPILifecycle(t *testing.T) {
	ts, _ := testServer(t, svc.Config{OpTimeout: 10 * time.Second})

	if code, body := get(t, ts, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}

	code, body := post(t, ts, "/v1/open", url.Values{"id": {"web"}, "qos": {"latency"}, "ranks": {"4"}})
	if code != 200 {
		t.Fatalf("open web: %d %s", code, body)
	}
	code, body = post(t, ts, "/v1/open", url.Values{"id": {"batch"}, "qos": {"throughput"}, "ranks": {"4"}})
	if code != 200 {
		t.Fatalf("open batch: %d %s", code, body)
	}

	for _, op := range []string{"barrier", "bcast", "allreduce", "allgather", "alltoall"} {
		for _, id := range []string{"web", "batch"} {
			code, body = post(t, ts, "/v1/run", url.Values{"id": {id}, "op": {op}, "bytes": {"2048"}})
			if code != 200 {
				t.Fatalf("run %s on %s: %d %s", op, id, code, body)
			}
		}
	}

	_, metricsOut := get(t, ts, "/metrics")
	for _, want := range []string{
		`tenant="web",qos="latency"`,
		`tenant="batch",qos="throughput"`,
	} {
		if !strings.Contains(metricsOut, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	code, body = get(t, ts, "/v1/stats")
	if code != 200 {
		t.Fatalf("stats: %d %s", code, body)
	}
	var st svc.Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats not JSON: %v in %s", err, body)
	}
	if st.Live != 2 || st.Opened != 2 {
		t.Fatalf("stats = %+v", st)
	}

	for _, id := range []string{"web", "batch"} {
		if code, body = post(t, ts, "/v1/close", url.Values{"id": {id}}); code != 200 {
			t.Fatalf("close %s: %d %s", id, code, body)
		}
	}
	if code, _ = post(t, ts, "/v1/run", url.Values{"id": {"web"}, "op": {"barrier"}}); code != 404 {
		t.Fatalf("run on closed tenant = %d, want 404", code)
	}
}

// TestAPIErrors pins the error mapping: bad arguments 400, unknown tenant
// 404, a full server 429.
func TestAPIErrors(t *testing.T) {
	ts, _ := testServer(t, svc.Config{MaxSessions: 1})

	if code, _ := post(t, ts, "/v1/open", url.Values{"id": {"t"}, "ranks": {"x"}}); code != 400 {
		t.Errorf("non-integer ranks = %d, want 400", code)
	}
	if code, _ := post(t, ts, "/v1/open", url.Values{"id": {"t"}, "qos": {"bulk"}, "ranks": {"2"}}); code != 400 {
		t.Errorf("unknown qos = %d, want 400", code)
	}
	if code, _ := post(t, ts, "/v1/run", url.Values{"id": {"ghost"}, "op": {"barrier"}}); code != 404 {
		t.Errorf("unknown tenant = %d, want 404", code)
	}
	if code, _ := post(t, ts, "/v1/open", url.Values{"id": {"t1"}, "ranks": {"2"}}); code != 200 {
		t.Fatalf("first open failed")
	}
	if code, _ := post(t, ts, "/v1/open", url.Values{"id": {"t2"}, "ranks": {"2"}}); code != 429 {
		t.Errorf("open on full server = %d, want 429", code)
	}
	if code, _ := get(t, ts, "/v1/stats"); code != 200 {
		t.Errorf("stats = %d", code)
	}
}

// TestServeSoak is the service soak through the HTTP surface: 64
// concurrent tenants churning through >= 1000 session creations against
// one gcaserve mux (scaled down with -short), per-tenant metrics live
// throughout.
func TestServeSoak(t *testing.T) {
	workers, creations := 64, 1000
	if testing.Short() {
		workers, creations = 8, 64
	}
	ts, srv := testServer(t, svc.Config{
		MaxSessions:  workers,
		QueueLen:     workers,
		AdmitTimeout: 30 * time.Second,
		OpTimeout:    10 * time.Second,
	})

	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	per := creations / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qos := "latency"
			if w%2 == 1 {
				qos = "throughput"
			}
			for i := 0; i < per; i++ {
				id := fmt.Sprintf("soak-%d-%d", w, i)
				q := url.Values{"id": {id}, "qos": {qos}, "ranks": {"2"}}
				if code, body := post(t, ts, "/v1/open", q); code != 200 {
					fail(fmt.Errorf("open %s: %d %s", id, code, body))
					return
				}
				if code, body := post(t, ts, "/v1/run", url.Values{"id": {id}, "op": {"allreduce"}, "bytes": {"256"}}); code != 200 {
					fail(fmt.Errorf("run %s: %d %s", id, code, body))
					return
				}
				if code, body := post(t, ts, "/v1/close", url.Values{"id": {id}}); code != 200 {
					fail(fmt.Errorf("close %s: %d %s", id, code, body))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	st := srv.Stats()
	if st.Live != 0 || st.Opened < uint64(per*workers) {
		t.Fatalf("stats after churn = %+v, want live 0 opened >= %d", st, per*workers)
	}
}

// TestHealthzDegraded pins the health contract: a healthy server answers
// 200 with a JSON body, a degraded (here: closing) server answers 503
// with the same shape.
func TestHealthzDegraded(t *testing.T) {
	srv := svc.NewServer(svc.Config{})
	ts := httptest.NewServer(newMux(srv))
	defer ts.Close()

	code, body := get(t, ts, "/healthz")
	if code != 200 {
		t.Fatalf("healthy healthz = %d %s", code, body)
	}
	var h svc.Health
	if err := json.Unmarshal([]byte(body), &h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz body %q: %v", body, err)
	}

	srv.Close()
	code, body = get(t, ts, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz = %d %s, want 503", code, body)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil || h.Status != "degraded" {
		t.Fatalf("degraded healthz body %q: %v", body, err)
	}
}

// TestRunUsage covers the run() process wrapper: bad flags exit 2, an
// unbindable address exits 1.
func TestRunUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.0.0.1:1"}, &out, &errb); code != 1 {
		t.Errorf("bad addr exit = %d, want 1", code)
	}
}
