// Command gcabench regenerates the paper's evaluation figures on the
// machine simulator and writes one TSV per grid (plus optional ASCII
// plots to stdout).
//
// Usage:
//
//	gcabench [flags] fig7|fig8|fig9|fig10|fig11|overlap|chaos|hier|recovery|vcoll|model|table1|hotpath|flight|all
//
// Flags:
//
//	-out DIR     output directory for TSVs (default "results")
//	-quick       shrunken sweeps (smoke test)
//	-nodes N     main evaluation node count (default 128)
//	-large N     scale-study node count (default 1024)
//	-ppnnodes N  node count for 8-PPN runs (default 32)
//	-ascii       also render ASCII plots to stdout
//	-cpuprofile F  write a CPU profile (pprof-labeled by collective/alg/k)
//	-memprofile F  write a heap profile at exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"exacoll/internal/bench"
	"exacoll/internal/machine"
	"exacoll/internal/model"
	"exacoll/internal/tuning"
)

func main() {
	out := flag.String("out", "results", "output directory for TSV files")
	quick := flag.Bool("quick", false, "shrunken sweeps for smoke testing")
	nodes := flag.Int("nodes", 128, "main evaluation node count")
	large := flag.Int("large", 1024, "scale-study node count")
	ppnNodes := flag.Int("ppnnodes", 32, "node count for 8-PPN runs")
	placement := flag.String("placement", "contiguous", "rank-to-node placement for multi-PPN grids: contiguous|dispersed")
	ascii := flag.Bool("ascii", false, "render ASCII plots to stdout")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file; pprof labels segment samples by (collective, alg, k)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		tuning.EnableProfLabels(true)
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		tuning.EnableProfLabels(true)
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gcabench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gcabench: memprofile:", err)
			}
		}()
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: gcabench [flags] fig7|fig8|fig9|fig10|fig11|overlap|chaos|hier|recovery|vcoll|model|table1|hotpath|flight|all")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg := bench.DefaultConfig()
	cfg.Quick = *quick
	cfg.Nodes = *nodes
	cfg.LargeNodes = *large
	cfg.PPNNodes = *ppnNodes
	if *quick {
		q := bench.QuickConfig()
		q.Quick = true
		cfg = q
	}
	switch *placement {
	case "contiguous":
		cfg.Place = machine.PlaceContiguous
	case "dispersed":
		cfg.Place = machine.PlaceDispersed
	default:
		fatal(fmt.Errorf("unknown placement %q (want contiguous or dispersed)", *placement))
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	targets := map[string]func() (*bench.Figure, error){
		"fig7":  cfg.Fig7,
		"fig8":  cfg.Fig8,
		"fig9":  cfg.Fig9,
		"fig10": cfg.Fig10,
		"fig11": cfg.Fig11,
		// overlap is not a paper figure: it measures what the nonblocking
		// collectives (internal/nbc) buy a pipelined training step on the
		// wall-clock mem transport.
		"overlap": cfg.Overlap,
		// chaos is not a paper figure either: it tracks the fault-tolerance
		// layer's fault-free overhead (<5% at >=256KiB) and dead-rank
		// recovery latency on the wall-clock mem transport.
		"chaos": cfg.Chaos,
		// hier compares the flat tuned selection against the topology
		// composition engine (internal/topo) at 8 PPN.
		"hier": cfg.Hier,
		// recovery times the elastic lifecycle's transitions over real
		// loopback TCP: grow admission, dead-rank compaction (including
		// failure detection), and rejoin after death.
		"recovery": cfg.Recovery,
		// vcoll extends the radix study to the vector/irregular workload
		// class: latency under uniform, skewed, and one-hot count
		// distributions.
		"vcoll": cfg.VColl,
	}
	order := []string{"fig7", "fig8", "fig9", "fig10", "fig11", "overlap", "chaos", "hier", "recovery", "vcoll"}

	for _, arg := range flag.Args() {
		switch arg {
		case "all":
			emitTable1(*out)
			emitModel(*out, cfg, *ascii)
			for _, id := range order {
				runFigure(targets[id], *out, *ascii, cfg)
			}
		case "table1":
			emitTable1(*out)
		case "model":
			emitModel(*out, cfg, *ascii)
		case "hotpath":
			runHotpath(*out, cfg)
		case "flight":
			runFlight(*out, cfg)
		default:
			f, ok := targets[arg]
			if !ok {
				fatal(fmt.Errorf("unknown target %q", arg))
			}
			runFigure(f, *out, *ascii, cfg)
		}
	}
}

// benchRecord is the machine-readable result of one figure run
// (BENCH_<id>.json): the full grid data plus the sweep configuration and
// wall time, so per-PR perf trajectories can be diffed by tooling instead
// of eyeballing TSVs.
type benchRecord struct {
	ID             string       `json:"id"`
	Caption        string       `json:"caption"`
	Notes          []string     `json:"notes,omitempty"`
	Quick          bool         `json:"quick"`
	Nodes          int          `json:"nodes"`
	LargeNodes     int          `json:"large_nodes"`
	PPNNodes       int          `json:"ppn_nodes"`
	ElapsedSeconds float64      `json:"elapsed_seconds"`
	Grids          []gridRecord `json:"grids"`
}

type gridRecord struct {
	Title  string         `json:"title"`
	XName  string         `json:"x_name"`
	YName  string         `json:"y_name"`
	Xs     []int          `json:"xs"`
	Series []seriesRecord `json:"series"`
}

type seriesRecord struct {
	Name string    `json:"name"`
	Ys   []float64 `json:"ys"`
}

func writeBenchJSON(out string, fig *bench.Figure, cfg bench.Config, elapsed time.Duration) {
	rec := benchRecord{
		ID: fig.ID, Caption: fig.Caption, Notes: fig.Notes,
		Quick: cfg.Quick, Nodes: cfg.Nodes, LargeNodes: cfg.LargeNodes, PPNNodes: cfg.PPNNodes,
		ElapsedSeconds: elapsed.Seconds(),
	}
	for _, g := range fig.Grids {
		gr := gridRecord{Title: g.Title, XName: g.XName, YName: g.YName, Xs: g.Xs}
		for _, s := range g.Series {
			gr.Series = append(gr.Series, seriesRecord{Name: s.Name, Ys: s.Ys})
		}
		rec.Grids = append(rec.Grids, gr)
	}
	path := filepath.Join(out, "BENCH_"+fig.ID+".json")
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("   wrote %s\n", path)
}

// runHotpath runs the hot-path microbenchmarks, writes BENCH_hotpath.json,
// and exits nonzero when the regression gate fails — the CI hook that keeps
// the specialized reducers and scratch pooling from quietly regressing.
func runHotpath(out string, cfg bench.Config) {
	rep, err := cfg.Hotpath(filepath.Join(out, "BENCH_hotpath_baseline.json"))
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	path := filepath.Join(out, "BENCH_hotpath.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("== hotpath: %s\n", rep.Caption)
	fmt.Printf("   reducer sum f64: %.0f MB/s (%.2fx generic %.0f MB/s), sum i32: %.0f MB/s\n",
		rep.Metrics.ReducerSumF64MBps, rep.SpeedupVsGeneric,
		rep.Metrics.ReducerGenericF64MBps, rep.Metrics.ReducerSumI32MBps)
	fmt.Printf("   allreduce 4KiB p=%d: %.0f ns/op, %.0f allocs/op; bcast: %.0f ns/op, %.0f allocs/op\n",
		rep.P, rep.Metrics.AllreduceSmallNsOp, rep.Metrics.AllreduceSmallAllocs,
		rep.Metrics.BcastSmallNsOp, rep.Metrics.BcastSmallAllocs)
	fmt.Printf("   stream 1MiB: mem %.0f, shm %.0f, tcp %.0f, striped tcp %.0f MB/s (%d stripes, %d cpus)\n",
		rep.Metrics.MemBW1MiBMBps, rep.Metrics.ShmBW1MiBMBps,
		rep.Metrics.TCPBW1MiBMBps, rep.Metrics.TCPStripedBW1MiBMBps,
		rep.StripeCount, rep.NumCPU)
	fmt.Printf("   stripe speedup: %.2fx at 256KiB, %.2fx at 1MiB; tuned allreduce k=%d\n",
		rep.StripeSpeedup256KiB, rep.StripeSpeedup1MiB, rep.TunedKAtStripes)
	fmt.Printf("   wrote %s\n", path)
	if !rep.Pass {
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "hotpath gate FAILED: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("   gate: PASS")
}

// runFlight runs the flight-recorder overhead gate, writes
// BENCH_flight.json plus the sample dump artifact (flight_sample.json),
// and exits nonzero on gate failure — the CI hook that keeps the
// always-on recorder cheap enough to actually leave always on.
func runFlight(out string, cfg bench.Config) {
	dumpPath := filepath.Join(out, "flight_sample.json")
	rep, err := cfg.FlightOverhead(dumpPath)
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	path := filepath.Join(out, "BENCH_flight.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("== flight: %s\n", rep.Caption)
	fmt.Printf("   allreduce 4KiB p=%d: bare %.0f ns/op, recorded %.0f ns/op (serialized on 1 proc)\n",
		rep.P, rep.Metrics.BareNsOp, rep.Metrics.RecordedNsOp)
	fmt.Printf("   per-rank overhead %.0f ns/op -> %.3fx latency, alloc delta %+.0f/op\n",
		rep.Metrics.PerRankOverheadNs, rep.Metrics.OverheadRatio, rep.Metrics.AllocDeltaOp)
	fmt.Printf("   sample dump: %d events across %d ranks -> %s\n",
		rep.Metrics.DumpEvents, rep.P, dumpPath)
	fmt.Printf("   wrote %s\n", path)
	if !rep.Pass {
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "flight gate FAILED: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("   gate: PASS")
}

func runFigure(f func() (*bench.Figure, error), out string, ascii bool, cfg bench.Config) {
	t0 := time.Now()
	fig, err := f()
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(t0)
	fmt.Printf("== %s: %s\n", fig.ID, fig.Caption)
	for _, note := range fig.Notes {
		fmt.Printf("   note: %s\n", note)
	}
	for i, g := range fig.Grids {
		name := fmt.Sprintf("%s_%c.tsv", fig.ID, 'a'+i)
		if len(fig.Grids) == 1 {
			name = fig.ID + ".tsv"
		}
		path := filepath.Join(out, name)
		fh, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := g.WriteTSV(fh); err != nil {
			fatal(err)
		}
		fh.Close()
		fmt.Printf("   wrote %s (%d x %d)\n", path, len(g.Xs), len(g.Series))
		if ascii {
			if err := g.RenderASCII(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
	writeBenchJSON(out, fig, cfg, elapsed)
}

func emitTable1(out string) {
	path := filepath.Join(out, "table1.tsv")
	if err := os.WriteFile(path, []byte(bench.Table1()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("== table1\n%s   wrote %s\n", indent(bench.Table1()), path)
}

// emitModel writes the analytical-model counterparts of Fig. 8: predicted
// latency vs k for each generalized kernel, for side-by-side comparison
// with the simulator's "measured" grids (the §VI-F accuracy discussion).
func emitModel(out string, cfg bench.Config, ascii bool) {
	inter, intra := model.FromSpec(machine.Frontier())
	p := cfg.Nodes
	sizes := []int{8, 1 << 10, 64 << 10, 1 << 20}

	emit := func(id string, ks []int, predict func(n, k int) float64) {
		g := &bench.Grid{
			Title: fmt.Sprintf("%s: analytical model, p=%d, frontier", id, p),
			XName: "k", YName: "latency_us", Xs: ks,
		}
		for _, n := range sizes {
			ys := make([]float64, len(ks))
			for i, k := range ks {
				ys[i] = predict(n, k) * 1e6
			}
			if err := g.AddSeries(fmt.Sprintf("%dB", n), ys); err != nil {
				fatal(err)
			}
		}
		path := filepath.Join(out, id+".tsv")
		fh, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := g.WriteTSV(fh); err != nil {
			fatal(err)
		}
		fh.Close()
		fmt.Printf("   wrote %s\n", path)
		if ascii {
			g.RenderASCII(os.Stdout)
		}
	}

	fmt.Println("== model: analytical cost models (eqs. 1-14) as k-sweeps")
	emit("model_knomial_reduce", []int{2, 4, 8, 16, 32, 64, 128},
		func(n, k int) float64 { return inter.ReduceKnomial(n, p, k) })
	emit("model_recmul_allreduce", []int{2, 3, 4, 5, 6, 8, 12, 16},
		func(n, k int) float64 { return inter.AllreduceRecMul(n, p, k) })
	emit("model_kring_bcast", []int{1, 2, 4, 8, 16, 32},
		func(n, k int) float64 { return inter.AllgatherKRing(n, p*8, k, intra) })
}

func indent(s string) string {
	return "   " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n   ") + "\n"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcabench:", err)
	os.Exit(1)
}
