// Command gcatune generates a §VI-G selection configuration for a machine
// by exhaustively benchmarking every (algorithm, radix) candidate on the
// simulator and writing the winning ladder as JSON. Point gca.WithTable
// (or the runtime selection in your application) at the file to get the
// speedups transparently.
//
// Usage:
//
//	gcatune -machine frontier -p 128 -ppn 1 -o frontier-128.json
package main

import (
	"flag"
	"fmt"
	"os"

	"exacoll/internal/bench"
	"exacoll/internal/core"
	"exacoll/internal/machine"
	"exacoll/internal/tuning"
)

func main() {
	mach := flag.String("machine", "frontier", "machine model: frontier|polaris|testbox")
	p := flag.Int("p", 32, "communicator size to tune for")
	ppn := flag.Int("ppn", 1, "processes per node")
	out := flag.String("o", "", "output file (default stdout)")
	maxBytes := flag.Int("maxbytes", 1<<20, "largest message size to tune")
	quick := flag.Bool("quick", false, "coarser sweeps")
	flag.Parse()

	var spec machine.Spec
	switch *mach {
	case "frontier":
		spec = machine.Frontier()
	case "polaris":
		spec = machine.Polaris()
	case "testbox":
		spec = machine.Testbox()
	default:
		fatal(fmt.Errorf("unknown machine %q", *mach))
	}
	spec = spec.WithPPN(*ppn)

	// Candidate set: every algorithm for each operation; generalized ones
	// at a sweep of radices.
	ks := map[core.Kernel][]int{
		core.KernelKnomial: {2, 4, 8, 16, 32, 64, 128},
		core.KernelRecMul:  {2, 3, 4, 5, 8, 16},
		core.KernelKRing:   {1, 2, 4, 8, 16},
	}
	ops := map[core.CollOp][]tuning.Candidate{}
	for _, op := range []core.CollOp{core.OpBcast, core.OpReduce, core.OpAllgather,
		core.OpAllreduce, core.OpReduceScatter, core.OpAlltoall} {
		for _, alg := range core.Algorithms(op) {
			if alg.Pow2Only && *p&(*p-1) != 0 {
				continue
			}
			if alg.Kernel == core.KernelLinear && op != core.OpReduce {
				continue // flat algorithms are only ever competitive for reduce
			}
			if !alg.Generalized {
				ops[op] = append(ops[op], tuning.Candidate{Alg: alg.Name})
				continue
			}
			for _, k := range ks[alg.Kernel] {
				if k > *p {
					continue
				}
				ops[op] = append(ops[op], tuning.Candidate{Alg: alg.Name, K: k})
			}
		}
	}

	sizes := bench.OSUSizes(8, *maxBytes)
	if *quick {
		sizes = nil
		for n := 8; n <= *maxBytes; n *= 16 {
			sizes = append(sizes, n)
		}
	}
	// Allgather result buffers are p·n per rank; bound the tuned sizes.
	agCap := 1 << 30 / (*p * *p)

	measure := func(cand tuning.Candidate, n int) (float64, error) {
		alg, err := core.Lookup(cand.Alg)
		if err != nil {
			return 0, err
		}
		if alg.Op == core.OpAllgather && n > agCap {
			return 1e18, nil // out of single-host budget: never selected
		}
		return bench.SimLatency(spec, *p, alg.Op, alg.Run, n, 0, cand.K)
	}

	fmt.Fprintf(os.Stderr, "gcatune: machine=%s p=%d ppn=%d, %d sizes\n", spec.Name, *p, *ppn, len(sizes))
	tab, err := tuning.Autotune(ops, sizes, measure)
	if err != nil {
		fatal(err)
	}
	tab.Machine = spec.Name
	tab.P = *p
	tab.PPN = *ppn

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tab.Save(w); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "gcatune: wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcatune:", err)
	os.Exit(1)
}
