// Command gcatune generates a §VI-G selection configuration for a machine
// by exhaustively benchmarking every (algorithm, radix) candidate on the
// simulator and writing the winning ladder as JSON. Point gca.WithTable
// (or the runtime selection in your application) at the file to get the
// speedups transparently.
//
// Usage:
//
//	gcatune -machine frontier -p 128 -ppn 1 -o frontier-128.json
package main

import (
	"flag"
	"fmt"
	"os"

	"exacoll/internal/bench"
	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/machine"
	"exacoll/internal/model"
	"exacoll/internal/tuning"
)

func main() {
	mach := flag.String("machine", "frontier", "machine model: frontier|polaris|testbox")
	p := flag.Int("p", 32, "communicator size to tune for")
	ppn := flag.Int("ppn", 1, "processes per node")
	out := flag.String("o", "", "output file (default stdout)")
	maxBytes := flag.Int("maxbytes", 1<<20, "largest message size to tune")
	quick := flag.Bool("quick", false, "coarser sweeps")
	hier := flag.Bool("hier", false,
		"after tuning, rank the hierarchical composition engine against the flat tuned selection per op/size (requires -ppn > 1); report goes to stderr")
	flag.Parse()

	var spec machine.Spec
	switch *mach {
	case "frontier":
		spec = machine.Frontier()
	case "polaris":
		spec = machine.Polaris()
	case "testbox":
		spec = machine.Testbox()
	default:
		fatal(fmt.Errorf("unknown machine %q", *mach))
	}
	spec = spec.WithPPN(*ppn)

	// Candidate set: every algorithm for each operation; generalized ones
	// at a sweep of radices.
	ks := map[core.Kernel][]int{
		core.KernelKnomial: {2, 4, 8, 16, 32, 64, 128},
		core.KernelRecMul:  {2, 3, 4, 5, 8, 16},
		core.KernelKRing:   {1, 2, 4, 8, 16},
	}
	ops := map[core.CollOp][]tuning.Candidate{}
	for _, op := range []core.CollOp{core.OpBcast, core.OpReduce, core.OpAllgather,
		core.OpAllreduce, core.OpReduceScatter, core.OpAlltoall} {
		for _, alg := range core.Algorithms(op) {
			if alg.Pow2Only && *p&(*p-1) != 0 {
				continue
			}
			if alg.Kernel == core.KernelLinear && op != core.OpReduce {
				continue // flat algorithms are only ever competitive for reduce
			}
			if !alg.Generalized {
				ops[op] = append(ops[op], tuning.Candidate{Alg: alg.Name})
				continue
			}
			for _, k := range ks[alg.Kernel] {
				if k > *p {
					continue
				}
				ops[op] = append(ops[op], tuning.Candidate{Alg: alg.Name, K: k})
			}
		}
	}

	sizes := bench.OSUSizes(8, *maxBytes)
	if *quick {
		sizes = nil
		for n := 8; n <= *maxBytes; n *= 16 {
			sizes = append(sizes, n)
		}
	}
	// Allgather result buffers are p·n per rank; bound the tuned sizes.
	agCap := 1 << 30 / (*p * *p)

	measure := func(cand tuning.Candidate, n int) (float64, error) {
		alg, err := core.Lookup(cand.Alg)
		if err != nil {
			return 0, err
		}
		if alg.Op == core.OpAllgather && n > agCap {
			return 1e18, nil // out of single-host budget: never selected
		}
		return bench.SimLatency(spec, *p, alg.Op, alg.Run, n, 0, cand.K)
	}

	fmt.Fprintf(os.Stderr, "gcatune: machine=%s p=%d ppn=%d, %d sizes\n", spec.Name, *p, *ppn, len(sizes))
	tab, err := tuning.Autotune(ops, sizes, measure)
	if err != nil {
		fatal(err)
	}
	tab.Machine = spec.Name
	tab.P = *p
	tab.PPN = *ppn

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tab.Save(w); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "gcatune: wrote %s\n", *out)
	}

	if *hier {
		if *ppn < 2 {
			fatal(fmt.Errorf("-hier requires -ppn > 1 (got %d)", *ppn))
		}
		reportHier(spec, *p, *ppn, tab, sizes, agCap)
	}
}

// reportHier compares the flat tuned ladder against the hierarchical
// composition engine (simulator-measured on both sides) and against the
// two-level analytical prediction, then prints the crossover size per
// operation — the point a topology-aware session should switch from flat
// to multi-level lowering.
func reportHier(spec machine.Spec, p, ppn int, tab *tuning.Table, sizes []int, agCap int) {
	inter, intra := model.FromSpec(spec)
	pred := model.Hier{Inter: inter, Intra: intra}
	nodes := (p + ppn - 1) / ppn
	kIntra := ppn
	if kIntra < 2 {
		kIntra = 2
	}
	fmt.Fprintf(os.Stderr, "gcatune: hierarchical vs flat (%d nodes x %d ppn, p=%d)\n", nodes, ppn, p)
	hops := map[core.CollOp]string{
		core.OpBcast: "bcast", core.OpReduce: "reduce",
		core.OpAllgather: "allgather", core.OpAllreduce: "allreduce",
	}
	for _, op := range []core.CollOp{core.OpBcast, core.OpReduce, core.OpAllgather, core.OpAllreduce} {
		cross := -1
		for _, n := range sizes {
			n = bench.RoundSize(n)
			if op == core.OpAllgather && n > agCap {
				continue // same single-host budget bound as the tuning sweep
			}
			flat, err := bench.SimLatency(spec, p, op,
				func(c comm.Comm, a core.Args) error { return tab.Run(c, op, a) }, n, 0, 0)
			if err != nil {
				fatal(err)
			}
			hl, err := bench.HierLatency(spec, p, op, n)
			if err != nil {
				fatal(err)
			}
			pm, err := pred.Predict(hops[op], n, nodes, ppn, kIntra, 4)
			if err != nil {
				fatal(err)
			}
			mark := ""
			if hl < flat {
				mark = " *"
				if cross < 0 {
					cross = n
				}
			}
			fmt.Fprintf(os.Stderr, "  %-18v %9dB  flat %11.3fus  hier %11.3fus  model %11.3fus%s\n",
				op, n, flat*1e6, hl*1e6, pm*1e6, mark)
		}
		if cross >= 0 {
			fmt.Fprintf(os.Stderr, "  -> %v: prefer hierarchical from %dB (*)\n", op, cross)
		} else {
			fmt.Fprintf(os.Stderr, "  -> %v: flat tuned selection wins across the sweep\n", op)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcatune:", err)
	os.Exit(1)
}
