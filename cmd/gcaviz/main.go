// Command gcaviz inspects the algorithms' communication structures:
// ASCII dumps of the k-nomial tree, recursive-multiplying rounds and
// (k-)ring schedules (the paper's Figs. 1–6 as text), and full event
// traces of a collective executed on the machine simulator, exportable as
// Chrome trace-viewer JSON.
//
// Usage:
//
//	gcaviz tree -p 6 -k 3
//	gcaviz recmul -p 9 -k 3
//	gcaviz kring -p 6 -k 3
//	gcaviz trace -alg allreduce_recmul -p 8 -k 4 -bytes 4096 -chrome trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"exacoll/internal/bench"
	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/machine"
	"exacoll/internal/simnet"
	"exacoll/internal/trace"
)

func main() {
	p := flag.Int("p", 6, "number of ranks")
	k := flag.Int("k", 3, "radix / group size")
	algName := flag.String("alg", "allreduce_recmul", "algorithm for the trace subcommand")
	nbytes := flag.Int("bytes", 1024, "message size for the trace subcommand")
	mach := flag.String("machine", "frontier", "machine model for the trace subcommand")
	chrome := flag.String("chrome", "", "write Chrome trace JSON to this file (trace subcommand)")

	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: gcaviz tree|recmul|ring|kring|trace [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	sub := os.Args[1]
	if err := flag.CommandLine.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	switch sub {
	case "tree":
		fmt.Print(trace.DumpKnomialTree(*p, *k))
	case "recmul":
		fmt.Print(trace.DumpRecMulRounds(*p, *k))
	case "ring":
		fmt.Print(trace.DumpSchedule(core.RingSchedule(*p), 0))
	case "kring":
		s, err := core.KRingSchedule(*p, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Print(trace.DumpSchedule(s, *k))
	case "trace":
		if err := runTrace(*mach, *algName, *p, *nbytes, *k, *chrome); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown subcommand %q", sub))
	}
}

// runTrace executes one collective on the simulator with tracing and
// prints the event log, per-rank summary and total latency.
func runTrace(mach, algName string, p, nbytes, k int, chromePath string) error {
	var spec machine.Spec
	switch mach {
	case "frontier":
		spec = machine.Frontier()
	case "polaris":
		spec = machine.Polaris()
	case "testbox":
		spec = machine.Testbox()
	default:
		return fmt.Errorf("unknown machine %q", mach)
	}
	alg, err := core.Lookup(algName)
	if err != nil {
		return err
	}
	sim, err := simnet.New(spec, p)
	if err != nil {
		return err
	}
	sink := trace.NewSink()
	n := bench.RoundSize(nbytes)
	err = sim.Run(func(c comm.Comm) error {
		a := bench.MakeArgs(alg.Op, c.Rank(), p, n, 0, k)
		return alg.Run(sink.Wrap(c), a)
	})
	if err != nil {
		return err
	}

	fmt.Printf("%s on %s, p=%d, n=%dB, k=%d — latency %.3f us\n\n",
		algName, spec.Name, p, n, k, sim.MaxTime()*1e6)
	fmt.Print(trace.FormatEvents(sink.Events()))
	fmt.Println("\nper-rank summary:")
	for _, s := range sink.Summarize() {
		fmt.Printf("  rank %3d: %3d sends (%8d B), %3d recvs\n",
			s.Rank, s.Sends, s.BytesSent, s.Recvs)
	}

	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sink.WriteChromeTrace(f); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (open in chrome://tracing or ui.perfetto.dev)\n", chromePath)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcaviz:", err)
	os.Exit(1)
}
