// Command gcaviz inspects the algorithms' communication structures:
// ASCII dumps of the k-nomial tree, recursive-multiplying rounds and
// (k-)ring schedules (the paper's Figs. 1–6 as text), full event traces
// of a collective executed on the machine simulator, and flight-recorder
// dumps collected from live runs — both exportable as Chrome trace-viewer
// JSON.
//
// Usage:
//
//	gcaviz tree -p 6 -k 3
//	gcaviz recmul -p 9 -k 3
//	gcaviz kring -p 6 -k 3
//	gcaviz trace -alg allreduce_recmul -p 8 -k 4 -bytes 4096 -chrome trace.json
//	gcaviz flight dump.json                 # critical-path report
//	gcaviz flight -chrome merged.json dump.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"exacoll/internal/bench"
	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/flight"
	"exacoll/internal/machine"
	"exacoll/internal/simnet"
	"exacoll/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// usage writes the subcommand summary and flag defaults.
func usage(w io.Writer, fs *flag.FlagSet) {
	fmt.Fprintln(w, `usage: gcaviz <subcommand> [flags] [args]

subcommands:
  tree     ASCII dump of the k-nomial tree (-p, -k)
  recmul   recursive-multiplying round structure (-p, -k)
  ring     ring schedule (-p)
  kring    k-ring schedule (-p, -k)
  trace    run one collective on the simulator and print its event trace
           (-alg, -p, -k, -bytes, -machine, -chrome out.json)
  flight   analyze a flight-recorder dump (from gcarun -flight or
           Session.FlightDump): per-collective critical-path report, and
           with -chrome the merged cross-rank Chrome trace

flags:`)
	fs.SetOutput(w)
	fs.PrintDefaults()
}

// run is main minus the process boundary, so tests can drive every
// subcommand. It returns the exit code: 0 ok, 1 runtime error, 2 usage.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcaviz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	p := fs.Int("p", 6, "number of ranks")
	k := fs.Int("k", 3, "radix / group size")
	algName := fs.String("alg", "allreduce_recmul", "algorithm for the trace subcommand")
	nbytes := fs.Int("bytes", 1024, "message size for the trace subcommand")
	mach := fs.String("machine", "frontier", "machine model for the trace subcommand")
	chrome := fs.String("chrome", "", "write Chrome trace JSON to this file (trace and flight subcommands)")

	if len(argv) < 1 {
		usage(stderr, fs)
		return 2
	}
	sub := argv[0]
	switch sub {
	case "help", "-h", "-help", "--help":
		usage(stdout, fs)
		return 0
	}
	if err := fs.Parse(argv[1:]); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "gcaviz:", err)
		return 1
	}
	switch sub {
	case "tree":
		fmt.Fprint(stdout, trace.DumpKnomialTree(*p, *k))
	case "recmul":
		fmt.Fprint(stdout, trace.DumpRecMulRounds(*p, *k))
	case "ring":
		fmt.Fprint(stdout, trace.DumpSchedule(core.RingSchedule(*p), 0))
	case "kring":
		s, err := core.KRingSchedule(*p, *k)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, trace.DumpSchedule(s, *k))
	case "trace":
		if err := runTrace(stdout, *mach, *algName, *p, *nbytes, *k, *chrome); err != nil {
			return fail(err)
		}
	case "flight":
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, "gcaviz: flight needs exactly one dump file argument")
			return 2
		}
		if err := runFlight(stdout, fs.Arg(0), *chrome); err != nil {
			return fail(err)
		}
	default:
		fmt.Fprintf(stderr, "gcaviz: unknown subcommand %q\n\n", sub)
		usage(stderr, fs)
		return 2
	}
	return 0
}

// runTrace executes one collective on the simulator with tracing and
// prints the event log, per-rank summary and total latency.
func runTrace(stdout io.Writer, mach, algName string, p, nbytes, k int, chromePath string) error {
	var spec machine.Spec
	switch mach {
	case "frontier":
		spec = machine.Frontier()
	case "polaris":
		spec = machine.Polaris()
	case "testbox":
		spec = machine.Testbox()
	default:
		return fmt.Errorf("unknown machine %q", mach)
	}
	alg, err := core.Lookup(algName)
	if err != nil {
		return err
	}
	sim, err := simnet.New(spec, p)
	if err != nil {
		return err
	}
	sink := trace.NewSink()
	n := bench.RoundSize(nbytes)
	err = sim.Run(func(c comm.Comm) error {
		a := bench.MakeArgs(alg.Op, c.Rank(), p, n, 0, k)
		return alg.Run(sink.Wrap(c), a)
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%s on %s, p=%d, n=%dB, k=%d — latency %.3f us\n\n",
		algName, spec.Name, p, n, k, sim.MaxTime()*1e6)
	fmt.Fprint(stdout, trace.FormatEvents(sink.Events()))
	fmt.Fprintln(stdout, "\nper-rank summary:")
	for _, s := range sink.Summarize() {
		fmt.Fprintf(stdout, "  rank %3d: %3d sends (%8d B), %3d recvs\n",
			s.Rank, s.Sends, s.BytesSent, s.Recvs)
	}

	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sink.WriteChromeTrace(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote %s (open in chrome://tracing or ui.perfetto.dev)\n", chromePath)
	}
	return nil
}

// runFlight loads a flight dump and prints the per-collective
// critical-path report; with -chrome it also renders the merged global
// timeline as Chrome trace JSON.
func runFlight(stdout io.Writer, path, chromePath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := flight.ReadDump(f)
	if err != nil {
		return err
	}
	if err := d.Analyze().WriteReport(stdout); err != nil {
		return err
	}
	if chromePath != "" {
		out, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := trace.WriteFlightTrace(out, d); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote %s (open in chrome://tracing or ui.perfetto.dev)\n", chromePath)
	}
	return nil
}
