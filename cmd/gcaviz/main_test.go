package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"exacoll/gca"
)

// drive runs one gcaviz invocation through run and returns exit code,
// stdout and stderr.
func drive(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestSubcommandSmoke exercises every structure-dump subcommand: each
// must exit 0 and produce output.
func TestSubcommandSmoke(t *testing.T) {
	cases := [][]string{
		{"tree", "-p", "6", "-k", "3"},
		{"recmul", "-p", "9", "-k", "3"},
		{"ring", "-p", "5"},
		{"kring", "-p", "6", "-k", "3"},
	}
	for _, args := range cases {
		t.Run(args[0], func(t *testing.T) {
			code, out, errOut := drive(args...)
			if code != 0 {
				t.Fatalf("gcaviz %v: exit %d, stderr %q", args, code, errOut)
			}
			if out == "" {
				t.Fatalf("gcaviz %v: empty stdout", args)
			}
		})
	}
}

// TestTraceSmoke runs a small collective on the simulator and checks the
// event trace and the optional Chrome export.
func TestTraceSmoke(t *testing.T) {
	chrome := filepath.Join(t.TempDir(), "trace.json")
	code, out, errOut := drive("trace", "-alg", "allreduce_recmul",
		"-p", "4", "-k", "2", "-bytes", "512", "-chrome", chrome)
	if code != 0 {
		t.Fatalf("trace: exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "latency") || !strings.Contains(out, "per-rank summary") {
		t.Fatalf("trace output missing sections:\n%s", out)
	}
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome export is not a JSON event array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("chrome export has no events")
	}
}

// TestUsageAndErrors pins the exit-code contract: help exits 0 with the
// usage text, while no subcommand, unknown subcommands, bad flags and a
// flight call without a dump all exit 2.
func TestUsageAndErrors(t *testing.T) {
	code, out, _ := drive("help")
	if code != 0 || !strings.Contains(out, "subcommands:") {
		t.Fatalf("help: exit %d, stdout %q", code, out)
	}

	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{"no-args", nil, "usage:"},
		{"unknown", []string{"frobnicate"}, "unknown subcommand"},
		{"bad-flag", []string{"tree", "-nope"}, "flag provided"},
		{"flight-no-dump", []string{"flight"}, "dump file"},
		{"flight-extra-args", []string{"flight", "a.json", "b.json"}, "dump file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errOut := drive(tc.args...)
			if code != 2 {
				t.Fatalf("gcaviz %v: exit %d, want 2 (stderr %q)", tc.args, code, errOut)
			}
			if !strings.Contains(errOut, tc.want) {
				t.Fatalf("gcaviz %v: stderr %q missing %q", tc.args, errOut, tc.want)
			}
		})
	}

	if code, _, _ := drive("flight", filepath.Join(t.TempDir(), "missing.json")); code != 1 {
		t.Fatalf("flight on missing file: exit %d, want 1", code)
	}
}

// writeFlightFixture runs recorded collectives on an in-process world and
// writes rank 0's collected dump to a temp file.
func writeFlightFixture(t *testing.T, p int) string {
	t.Helper()
	w := gca.NewLocalWorld(p)
	defer w.Close()
	path := filepath.Join(t.TempDir(), "dump.json")
	err := w.Run(func(c gca.Comm) error {
		s := gca.NewSession(c, gca.WithFlightRecorder(gca.FlightOptions{}))
		buf := make([]byte, 1024)
		rb := make([]byte, 1024)
		for i := 0; i < 3; i++ {
			if err := s.Allreduce(buf, rb, gca.Sum, gca.Float64); err != nil {
				return err
			}
		}
		d, err := s.FlightDump()
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return d.WriteJSON(f)
	})
	if err != nil {
		t.Fatalf("building flight fixture: %v", err)
	}
	return path
}

// TestFlightSmoke analyzes a real collected dump: the report must name
// the collective and the Chrome export must be a valid event array.
func TestFlightSmoke(t *testing.T) {
	dump := writeFlightFixture(t, 4)
	chrome := filepath.Join(t.TempDir(), "merged.json")

	code, out, errOut := drive("flight", "-chrome", chrome, dump)
	if code != 0 {
		t.Fatalf("flight: exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "flight: 4 ranks") {
		t.Fatalf("report missing header:\n%s", out)
	}
	if !strings.Contains(out, "allreduce") {
		t.Fatalf("report does not name the collective:\n%s", out)
	}
	if !strings.Contains(out, "attributed") {
		t.Fatalf("report missing critical-path attribution:\n%s", out)
	}

	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome export is not a JSON event array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("chrome export has no events")
	}
}
