// Tunedselection: the §VI-G workflow end to end. The example autotunes a
// small simulated Frontier partition (every algorithm × radix × size),
// writes the resulting selection configuration as JSON — the analogue of
// MPICH's tuning file — then loads it into a session and runs collectives
// that transparently use the tuned choices.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"exacoll/gca"
	"exacoll/internal/bench"
	"exacoll/internal/core"
	"exacoll/internal/machine"
	"exacoll/internal/tuning"
)

func main() {
	const p = 16
	spec := machine.Frontier()

	// Candidates: fixed-radix baselines plus generalized algorithms over a
	// radix sweep.
	ops := map[core.CollOp][]tuning.Candidate{
		core.OpAllreduce: {
			{Alg: "allreduce_recdbl"},
			{Alg: "allreduce_rabenseifner"},
			{Alg: "allreduce_ring"},
			{Alg: "allreduce_recmul", K: 2},
			{Alg: "allreduce_recmul", K: 4},
			{Alg: "allreduce_recmul", K: 8},
		},
		core.OpBcast: {
			{Alg: "bcast_binomial"},
			{Alg: "bcast_ring"},
			{Alg: "bcast_knomial", K: 4},
			{Alg: "bcast_knomial", K: 16},
			{Alg: "bcast_recmul", K: 4},
		},
	}
	sizes := []int{8, 256, 4 << 10, 64 << 10, 1 << 20}

	measure := func(cand tuning.Candidate, n int) (float64, error) {
		alg, err := core.Lookup(cand.Alg)
		if err != nil {
			return 0, err
		}
		return bench.SimLatency(spec, p, alg.Op, alg.Run, n, 0, cand.K)
	}

	fmt.Printf("autotuning %s, p=%d over %d sizes...\n", spec.Name, p, len(sizes))
	tab, err := tuning.Autotune(ops, sizes, measure)
	if err != nil {
		log.Fatal(err)
	}
	tab.Machine = spec.Name
	tab.P = p
	tab.PPN = spec.PPN

	// Persist and reload, as an application deployment would.
	path := filepath.Join(os.TempDir(), "exacoll-tuned.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tab.Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	loaded, err := tuning.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selection configuration written to %s:\n", path)
	for op, ladder := range loaded.Ops {
		fmt.Printf("  %s:\n", op)
		for _, e := range ladder {
			bound := "inf"
			if e.MaxBytes > 0 {
				bound = fmt.Sprintf("%dB", e.MaxBytes)
			}
			fmt.Printf("    <= %-8s %s", bound, e.Alg)
			if e.K > 0 {
				fmt.Printf(" (k=%d)", e.K)
			}
			fmt.Println()
		}
	}

	// Use the tuned table through the public API.
	world := gca.NewLocalWorld(p)
	defer world.Close()
	err = world.Run(func(c gca.Comm) error {
		s := gca.NewSession(c, gca.WithTable(loaded))
		sum, err := s.AllreduceFloat64([]float64{1}, gca.Sum)
		if err != nil {
			return err
		}
		if sum[0] != p {
			return fmt.Errorf("allreduce = %v", sum)
		}
		buf := make([]byte, 4096)
		return s.Bcast(buf, 0)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tuned session ran allreduce + bcast: ok")
}
