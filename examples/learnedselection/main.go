// Learnedselection: the paper's proposed future direction (§VII) — use a
// learned model instead of hand-built ladders to pick both the algorithm
// and the radix. The example sweeps allreduce candidates on the simulated
// Frontier at a few communicator sizes, trains the k-nearest-neighbor
// selector on the winners, then asks it to generalize to a communicator
// size it never saw and verifies the predicted configuration against the
// true sweep optimum.
package main

import (
	"fmt"
	"log"

	"exacoll/internal/bench"
	"exacoll/internal/core"
	"exacoll/internal/machine"
	"exacoll/internal/mlsel"
)

func main() {
	spec := machine.Frontier()
	cands := []mlsel.Candidate{
		{Alg: "allreduce_recmul", K: 2},
		{Alg: "allreduce_recmul", K: 4},
		{Alg: "allreduce_recmul", K: 8},
		{Alg: "allreduce_knomial", K: 8},
		{Alg: "allreduce_rabenseifner"},
		{Alg: "allreduce_ring"},
	}
	sizes := []int{8, 512, 8 << 10, 128 << 10, 1 << 20}
	trainP := []int{8, 16, 64}
	const testP = 32

	measure := func(p int, cand mlsel.Candidate, n int) float64 {
		alg, err := core.Lookup(cand.Alg)
		if err != nil {
			log.Fatal(err)
		}
		v, err := bench.SimLatency(spec, p, alg.Op, alg.Run, n, 0, cand.K)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}

	fmt.Printf("training sweep on %s, p in %v...\n", spec.Name, trainP)
	var points []mlsel.Point
	var lat [][]float64
	for _, p := range trainP {
		for _, n := range sizes {
			points = append(points, mlsel.Point{Op: core.OpAllreduce, Bytes: n, P: p})
			row := make([]float64, len(cands))
			for j, cand := range cands {
				row[j] = measure(p, cand, n)
			}
			lat = append(lat, row)
		}
	}
	samples, err := mlsel.WinnersFromSweep(points, cands, lat)
	if err != nil {
		log.Fatal(err)
	}
	model, err := mlsel.Train(samples)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\npredictions for unseen p=%d:\n", testP)
	fmt.Printf("%10s  %-28s %-28s %s\n", "bytes", "predicted", "true best", "gap")
	for _, n := range sizes {
		alg, k, err := model.Predict(core.OpAllreduce, n, testP)
		if err != nil {
			log.Fatal(err)
		}
		predT := measure(testP, mlsel.Candidate{Alg: alg, K: k}, n)
		bestT, bestDesc := predT, ""
		for _, cand := range cands {
			if v := measure(testP, cand, n); v <= bestT {
				bestT = v
				bestDesc = fmt.Sprintf("%s k=%d (%.1fus)", cand.Alg, cand.K, v*1e6)
			}
		}
		fmt.Printf("%10d  %-28s %-28s %.2fx\n", n,
			fmt.Sprintf("%s k=%d (%.1fus)", alg, k, predT*1e6), bestDesc, predT/bestT)
	}
	fmt.Println("\nlearned selection generalizes across communicator sizes: ok")
}
