// Multitenant: one collective service process hosting two tenants — a
// latency-class "web" tenant and a throughput-class "analytics" tenant —
// sharing a host world under disjoint tag namespaces. Both run their
// collectives concurrently; the per-tenant Prometheus exposition at the
// end shows each tenant's traffic under its own {tenant, qos} labels.
//
// The same service runs standalone as `gcaserve` with this flow driven
// over HTTP (see README).
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
	"sync"
	"time"

	"exacoll/gca"
	"exacoll/internal/metrics"
	"exacoll/internal/svc"
)

func main() {
	srv := svc.NewServer(svc.Config{OpTimeout: 10 * time.Second})
	defer srv.Close()

	web, err := srv.Open("web", svc.QoSLatency, 4)
	if err != nil {
		log.Fatal(err)
	}
	analytics, err := srv.Open("analytics", svc.QoSThroughput, 4)
	if err != nil {
		log.Fatal(err)
	}

	// Both tenants compute concurrently: web a small allreduce (latency
	// tables: high-radix trees), analytics a bulk broadcast (throughput
	// tables: chains and rings). Tag namespaces keep the interleaved
	// traffic on the shared world perfectly separate.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		err := web.Run(func(rank int, s *gca.Session) error {
			send, recv := make([]byte, 8), make([]byte, 8)
			binary.LittleEndian.PutUint64(send, math.Float64bits(float64(rank+1)))
			if err := s.Allreduce(send, recv, gca.Sum, gca.Float64); err != nil {
				return err
			}
			if got := math.Float64frombits(binary.LittleEndian.Uint64(recv)); got != 10 {
				return fmt.Errorf("allreduce = %v, want 10", got)
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}()
	go func() {
		defer wg.Done()
		err := analytics.Run(func(rank int, s *gca.Session) error {
			buf := make([]byte, 1<<20)
			if rank == 0 {
				for i := range buf {
					buf[i] = byte(i)
				}
			}
			if err := s.Bcast(buf, 0); err != nil {
				return err
			}
			if buf[12345] != byte(12345%256) {
				return fmt.Errorf("bcast payload corrupt")
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}()
	wg.Wait()

	// The exposition carries every tenant's series under its identity.
	var sb strings.Builder
	if err := metrics.WritePrometheusTenants(&sb, srv.Tenants()); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, `gca_sends_total{tenant=`) && strings.Contains(line, `rank="0"`) {
			fmt.Println(line)
		}
	}

	st := srv.Stats()
	fmt.Fprintf(os.Stdout, "tenants=%d worlds=%d\n", st.Live, st.Worlds)
	fmt.Println("multi-tenant collective service: ok")
}
