// Training: data-parallel SGD over generalized allreduce — the workload
// class (gradient averaging) that makes MPI_Allreduce "the most popular
// collective for exascale applications" (§VI-C). Each of 8 workers holds a
// shard of a synthetic linear-regression dataset, computes a local
// gradient, and averages it across workers with the recursive-multiplying
// allreduce (k = 4, the Frontier port count) every step.
package main

import (
	"fmt"
	"log"
	"math"

	"exacoll/gca"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
)

const (
	workers  = 8
	features = 16
	perShard = 64
	steps    = 300
	lr       = 0.1
)

// trueWeights is the model the synthetic data is generated from.
func trueWeights() []float64 {
	w := make([]float64, features)
	for i := range w {
		w[i] = float64(i%5) - 2
	}
	return w
}

// shard generates worker r's deterministic examples.
func shard(r int) (xs [][]float64, ys []float64) {
	w := trueWeights()
	seed := uint64(r*2654435761 + 12345)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / float64(1<<53) // [0, 1)
	}
	for i := 0; i < perShard; i++ {
		x := make([]float64, features)
		dot := 0.0
		for j := range x {
			x[j] = 2*next() - 1
			dot += w[j] * x[j]
		}
		xs = append(xs, x)
		ys = append(ys, dot)
	}
	return xs, ys
}

func main() {
	world := gca.NewLocalWorld(workers)
	defer world.Close()

	losses := make([]float64, workers)
	err := world.Run(func(c gca.Comm) error {
		xs, ys := shard(c.Rank())
		w := make([]float64, features) // model replica, starts at zero

		for step := 0; step < steps; step++ {
			// Local gradient of mean squared error over the shard.
			grad := make([]float64, features)
			loss := 0.0
			for i, x := range xs {
				pred := 0.0
				for j := range w {
					pred += w[j] * x[j]
				}
				diff := pred - ys[i]
				loss += diff * diff
				for j := range x {
					grad[j] += 2 * diff * x[j] / perShard
				}
			}

			// Average gradients across workers: the allreduce step.
			sendbuf := datatype.EncodeFloat64(grad)
			recvbuf := make([]byte, len(sendbuf))
			if err := core.AllreduceRecMul(c, sendbuf, recvbuf,
				datatype.Sum, datatype.Float64, 4); err != nil {
				return err
			}
			sum := datatype.DecodeFloat64(recvbuf)
			for j := range w {
				w[j] -= lr * sum[j] / workers
			}
			if c.Rank() == 0 && step%75 == 0 {
				fmt.Printf("step %2d: shard-0 loss %.4f\n", step, loss/perShard)
			}
			losses[c.Rank()] = loss / perShard
		}

		// Converged model must be close to the generating weights on every
		// replica (allreduce keeps replicas bit-identical).
		maxErr := 0.0
		for j, tw := range trueWeights() {
			maxErr = math.Max(maxErr, math.Abs(w[j]-tw))
		}
		if maxErr > 0.05 {
			return fmt.Errorf("rank %d: model error %.4f after %d steps", c.Rank(), maxErr, steps)
		}
		if c.Rank() == 0 {
			fmt.Printf("converged: max |w - w*| = %.5f across %d features\n", maxErr, features)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("data-parallel training with recursive-multiplying allreduce: ok")
}
