// Pipelined training: the workload nonblocking collectives exist for.
// Data-parallel SGD where the gradient allreduce of step s is in flight
// WHILE step s+1's forward/backward pass computes — the lag-1 gradient
// pipeline used by large-scale training frameworks. Each worker starts an
// IAllreduce on its fresh gradient, immediately computes the next batch's
// gradient (polling the request between examples, the MPI_Test progress
// idiom), and only then waits and applies the now-averaged stale gradient.
// With a modest learning rate the one-step staleness costs accuracy
// nothing, and the communication time hides under compute.
package main

import (
	"fmt"
	"log"
	"math"

	"exacoll/gca"
	"exacoll/internal/datatype"
)

const (
	workers  = 4
	features = 16
	perShard = 64
	steps    = 400
	lr       = 0.08
)

// trueWeights is the model the synthetic data is generated from.
func trueWeights() []float64 {
	w := make([]float64, features)
	for i := range w {
		w[i] = float64(i%5) - 2
	}
	return w
}

// shard generates worker r's deterministic examples.
func shard(r int) (xs [][]float64, ys []float64) {
	w := trueWeights()
	seed := uint64(r*2654435761 + 12345)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / float64(1<<53) // [0, 1)
	}
	for i := 0; i < perShard; i++ {
		x := make([]float64, features)
		dot := 0.0
		for j := range x {
			x[j] = 2*next() - 1
			dot += w[j] * x[j]
		}
		xs = append(xs, x)
		ys = append(ys, dot)
	}
	return xs, ys
}

func main() {
	world := gca.NewLocalWorld(workers)
	defer world.Close()

	finals := make([][]float64, workers)
	err := world.Run(func(c gca.Comm) error {
		s := gca.NewSession(c, gca.OnMachine(gca.Frontier()))
		xs, ys := shard(s.Rank())
		w := make([]float64, features) // model replica, starts at zero

		// localGrad computes the MSE gradient over the shard at the current
		// weights, calling poll between examples so an in-flight collective
		// keeps progressing under the compute.
		localGrad := func(poll func()) []float64 {
			grad := make([]float64, features)
			for i, x := range xs {
				pred := 0.0
				for j := range w {
					pred += w[j] * x[j]
				}
				diff := pred - ys[i]
				for j := range x {
					grad[j] += 2 * diff * x[j] / perShard
				}
				if poll != nil {
					poll()
				}
			}
			return grad
		}

		// Lag-1 pipeline: the allreduce of step s's gradient completes
		// under step s+1's backward pass. Double-buffered so the library
		// owns one (send, recv) pair while we fill the other.
		var bufs [2]struct{ send, recv []byte }
		for i := range bufs {
			bufs[i].send = make([]byte, 8*features)
			bufs[i].recv = make([]byte, 8*features)
		}
		var req gca.CollRequest
		apply := func(avg []byte) {
			sum := datatype.DecodeFloat64(avg)
			for j := range w {
				w[j] -= lr * sum[j] / workers
			}
		}
		for step := 0; step < steps; step++ {
			grad := localGrad(func() {
				if req != nil {
					req.Test() // drive the previous step's allreduce
				}
			})
			if req != nil { // finish step-1's averaging, apply its gradient
				if err := req.Wait(); err != nil {
					return err
				}
				apply(bufs[(step+1)%2].recv)
			}
			b := &bufs[step%2]
			copy(b.send, datatype.EncodeFloat64(grad))
			var err error
			if req, err = s.IAllreduce(b.send, b.recv, gca.Sum, gca.Float64); err != nil {
				return err
			}
		}
		if err := req.Wait(); err != nil { // drain the last in-flight step
			return err
		}
		apply(bufs[(steps+1)%2].recv)

		maxErr := 0.0
		for j, tw := range trueWeights() {
			maxErr = math.Max(maxErr, math.Abs(w[j]-tw))
		}
		if maxErr > 0.05 {
			return fmt.Errorf("rank %d: model error %.4f after %d steps", s.Rank(), maxErr, steps)
		}
		if s.Rank() == 0 {
			fmt.Printf("converged with lag-1 gradients: max |w - w*| = %.5f\n", maxErr)
		}
		finals[s.Rank()] = append([]float64(nil), w...)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Every rank applies the same averaged-gradient stream, so replicas
	// must agree to rounding (the single-round recursive-multiplying
	// combine order is rank-local, so the last ulp may differ).
	for r := 1; r < workers; r++ {
		for j := range finals[0] {
			if math.Abs(finals[r][j]-finals[0][j]) > 1e-9 {
				log.Fatalf("replica divergence at rank %d feature %d: %g vs %g",
					r, j, finals[r][j], finals[0][j])
			}
		}
	}
	fmt.Println("pipelined training: gradient IAllreduce overlapped with the next step: ok")
}
