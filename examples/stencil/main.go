// Stencil: a distributed 1-D Jacobi heat diffusion solver — the classic
// HPC pattern mixing point-to-point halo exchange with collectives. Each
// rank owns a slab of the rod, exchanges one-cell halos with its
// neighbors every iteration, and every 10 iterations computes the global
// residual with a generalized allreduce to decide convergence; the final
// solution is assembled at rank 0 with a k-nomial gather.
package main

import (
	"fmt"
	"log"
	"math"

	"exacoll/gca"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
)

const (
	ranks     = 8
	cellsEach = 8
	maxIters  = 60000
	tolerance = 1e-10
)

func main() {
	world := gca.NewLocalWorld(ranks)
	defer world.Close()

	err := world.Run(func(c gca.Comm) error {
		r := c.Rank()
		// Local slab with two ghost cells; fixed boundary temperatures
		// 1.0 (left end of the rod) and 0.0 (right end).
		u := make([]float64, cellsEach+2)
		next := make([]float64, cellsEach+2)
		if r == 0 {
			u[0] = 1.0
		}

		const haloTag gca.Tag = 1
		iters := 0
		for ; iters < maxIters; iters++ {
			// Halo exchange with neighbors (point-to-point through the
			// same communicator the collectives use).
			var reqs []gca.Request
			if r > 0 {
				req, err := c.Isend(r-1, haloTag, datatype.EncodeFloat64(u[1:2]))
				if err != nil {
					return err
				}
				reqs = append(reqs, req)
			}
			if r < ranks-1 {
				req, err := c.Isend(r+1, haloTag, datatype.EncodeFloat64(u[cellsEach:cellsEach+1]))
				if err != nil {
					return err
				}
				reqs = append(reqs, req)
			}
			if r > 0 {
				var b [8]byte
				if _, err := c.Recv(r-1, haloTag, b[:]); err != nil {
					return err
				}
				u[0] = datatype.DecodeFloat64(b[:])[0]
			}
			if r < ranks-1 {
				var b [8]byte
				if _, err := c.Recv(r+1, haloTag, b[:]); err != nil {
					return err
				}
				u[cellsEach+1] = datatype.DecodeFloat64(b[:])[0]
			}
			if err := gca.WaitAll(reqs...); err != nil {
				return err
			}

			// Jacobi sweep and local residual.
			local := 0.0
			for i := 1; i <= cellsEach; i++ {
				next[i] = 0.5 * (u[i-1] + u[i+1])
				d := next[i] - u[i]
				local += d * d
			}
			copy(u[1:cellsEach+1], next[1:cellsEach+1])
			if r == 0 {
				u[0] = 1.0
			}

			// Global convergence check every 10 sweeps via recursive-
			// multiplying allreduce.
			if iters%10 == 9 {
				sendbuf := datatype.EncodeFloat64([]float64{local})
				recvbuf := make([]byte, 8)
				if err := core.AllreduceRecMul(c, sendbuf, recvbuf,
					datatype.Sum, datatype.Float64, 4); err != nil {
					return err
				}
				if math.Sqrt(datatype.DecodeFloat64(recvbuf)[0]) < tolerance {
					iters++
					break
				}
			}
		}

		// Assemble the full rod at rank 0 with a k-nomial gather (k=4).
		mine := datatype.EncodeFloat64(u[1 : cellsEach+1])
		var all []byte
		if r == 0 {
			all = make([]byte, len(mine)*ranks)
		}
		if err := core.GatherKnomial(c, mine, all, 0, 4); err != nil {
			return err
		}
		if r == 0 {
			rod := datatype.DecodeFloat64(all)
			// The steady state of the heat equation on a rod with fixed
			// ends is linear: check the midpoint.
			mid := rod[len(rod)/2]
			fmt.Printf("converged after %d sweeps; u(mid) = %.4f (analytic 0.5)\n", iters, mid)
			if math.Abs(mid-0.5) > 0.01 {
				return fmt.Errorf("midpoint %.4f too far from 0.5", mid)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stencil with halo exchange + generalized collectives: ok")
}
