// Machinesweep: explore how the optimal radix shifts between machines —
// the paper's headline claim that "a single, system-agnostic
// implementation of a generalized algorithm can optimize for multiple
// hardware features across multiple systems". The same
// recursive-multiplying allreduce is swept over k on simulated Frontier
// (4 NIC ports) and Polaris (2 NIC ports); the winning radix tracks the
// port count on each machine.
package main

import (
	"fmt"
	"log"
	"math"

	"exacoll/internal/bench"
	"exacoll/internal/core"
	"exacoll/internal/machine"
)

func main() {
	const p = 32
	const n = 64 << 10
	ks := []int{2, 3, 4, 5, 8, 16}

	fn, op, err := bench.AlgFn("allreduce_recmul")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("allreduce_recmul, p=%d, n=%d bytes\n\n", p, n)
	fmt.Printf("%-10s %6s", "machine", "ports")
	for _, k := range ks {
		fmt.Printf("  k=%-2d   ", k)
	}
	fmt.Printf("  best\n")

	for _, spec := range []machine.Spec{machine.Frontier(), machine.Polaris()} {
		bestK, bestT := 0, math.Inf(1)
		fmt.Printf("%-10s %6d", spec.Name, spec.Ports)
		for _, k := range ks {
			t, err := bench.SimLatency(spec, p, op, fn, n, 0, k)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %6.1fus", t*1e6)
			if t < bestT {
				bestK, bestT = k, t
			}
		}
		fmt.Printf("  k=%d\n", bestK)
	}

	fmt.Println("\nk-ring bcast on Frontier, 8 PPN (intranode links reward k = PPN):")
	fnB, opB, err := bench.AlgFn("bcast_kring")
	if err != nil {
		log.Fatal(err)
	}
	f8 := machine.Frontier().WithPPN(8)
	for _, k := range []int{1, 2, 4, 8, 16} {
		t, err := bench.SimLatency(f8, 64, opB, fnB, 1<<20, 0, k)
		if err != nil {
			log.Fatal(err)
		}
		label := ""
		if k == 1 {
			label = " (classic ring)"
		}
		if k == f8.PPN {
			label = " (= PPN)"
		}
		fmt.Printf("  k=%-2d  %8.1fus%s\n", k, t*1e6, label)
	}

	_ = core.OpAllreduce // document the op constants exist for users
}
