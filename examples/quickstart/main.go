// Quickstart: eight ranks in one process compute an allreduce and a
// broadcast through the public gca API, with algorithms chosen by the
// paper's recommended configuration for Frontier.
package main

import (
	"fmt"
	"log"

	"exacoll/gca"
)

func main() {
	const p = 8
	world := gca.NewLocalWorld(p)
	defer world.Close()

	err := world.Run(func(c gca.Comm) error {
		s := gca.NewSession(c, gca.OnMachine(gca.Frontier()))

		// Every rank contributes its rank; the sum 0+1+...+7 = 28 lands
		// everywhere.
		sum, err := s.AllreduceFloat64([]float64{float64(s.Rank())}, gca.Sum)
		if err != nil {
			return err
		}

		// Rank 0 broadcasts a greeting.
		msg := make([]byte, 32)
		if s.Rank() == 0 {
			copy(msg, "hello from the root rank")
		}
		if err := s.Bcast(msg, 0); err != nil {
			return err
		}

		fmt.Printf("rank %d: allreduce sum = %.0f, bcast = %q\n",
			s.Rank(), sum[0], string(msg[:24]))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
