package exacoll

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end via `go run`
// and checks for its success marker. Skipped with -short (each example is
// a full build + multi-rank run).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are not short")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"./examples/quickstart", "allreduce sum = 28"},
		{"./examples/training", "data-parallel training with recursive-multiplying allreduce: ok"},
		{"./examples/pipelinedtraining", "pipelined training: gradient IAllreduce overlapped with the next step: ok"},
		{"./examples/stencil", "stencil with halo exchange + generalized collectives: ok"},
		{"./examples/machinesweep", "k-ring bcast on Frontier"},
		{"./examples/tunedselection", "tuned session ran allreduce + bcast: ok"},
		{"./examples/learnedselection", "learned selection generalizes across communicator sizes: ok"},
		{"./examples/multitenant", "multi-tenant collective service: ok"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.dir, "./examples/"), func(t *testing.T) {
			out, err := exec.Command("go", "run", tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", tc.dir, err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("%s output missing %q:\n%s", tc.dir, tc.want, out)
			}
		})
	}
}
